// Dense matrix kernels: correctness under the strict baseline and the FMA
// sensitivity of the Finding 2 kernel.

#include <gtest/gtest.h>

#include "linalg/densemat.h"

namespace {

using namespace flit;
using linalg::DenseMatrix;
using linalg::Vector;

fpsem::EvalContext ctx() { return fpsem::strict_context(); }

DenseMatrix sample(std::size_t n) {
  DenseMatrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      a(i, j) = 1.0 / static_cast<double>(i + j + 1) + (i == j ? 2.0 : 0.0);
    }
  }
  return a;
}

TEST(DenseMatrix, MultMatchesManual) {
  auto c = ctx();
  DenseMatrix a(2, 3);
  a(0, 0) = 1;  a(0, 1) = 2;  a(0, 2) = 3;
  a(1, 0) = 4;  a(1, 1) = 5;  a(1, 2) = 6;
  Vector x{1.0, 1.0, 1.0}, y;
  linalg::mult(c, a, x, y);
  EXPECT_EQ(y, (Vector{6.0, 15.0}));
}

TEST(DenseMatrix, MultTransposeMatchesManual) {
  auto c = ctx();
  DenseMatrix a(2, 3);
  a(0, 0) = 1;  a(0, 1) = 2;  a(0, 2) = 3;
  a(1, 0) = 4;  a(1, 1) = 5;  a(1, 2) = 6;
  Vector x{1.0, 1.0}, y;
  linalg::mult_transpose(c, a, x, y);
  EXPECT_EQ(y, (Vector{5.0, 7.0, 9.0}));
}

TEST(DenseMatrix, MatMulIdentity) {
  auto c = ctx();
  const DenseMatrix a = sample(4);
  DenseMatrix eye(4, 4);
  for (std::size_t i = 0; i < 4; ++i) eye(i, i) = 1.0;
  DenseMatrix out;
  linalg::matmul(c, a, eye, out);
  EXPECT_EQ(out, a);
}

TEST(DenseMatrix, LuSolveRecoversKnownSolution) {
  auto c = ctx();
  const DenseMatrix a = sample(6);
  Vector x_true(6);
  for (std::size_t i = 0; i < 6; ++i) x_true[i] = 1.0 + 0.5 * i;
  Vector b;
  linalg::mult(c, a, x_true, b);
  Vector x;
  linalg::lu_solve(c, a, b, x);
  for (std::size_t i = 0; i < 6; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-12);
}

TEST(DenseMatrix, LuSolveThrowsOnSingular) {
  auto c = ctx();
  DenseMatrix a(2, 2);  // all zeros
  Vector b{1.0, 1.0}, x;
  EXPECT_THROW(linalg::lu_solve(c, a, b, x), std::domain_error);
}

TEST(DenseMatrix, DetOfTriangularAndSingular) {
  auto c = ctx();
  DenseMatrix a(3, 3);
  a(0, 0) = 2.0;  a(1, 1) = 3.0;  a(2, 2) = 4.0;
  EXPECT_NEAR(linalg::det(c, a), 24.0, 1e-12);
  DenseMatrix z(2, 2);
  EXPECT_EQ(linalg::det(c, z), 0.0);
}

TEST(DenseMatrix, FrobeniusNorm) {
  auto c = ctx();
  DenseMatrix a(2, 2);
  a(0, 0) = 1.0;  a(0, 1) = 2.0;  a(1, 0) = 2.0;  a(1, 1) = 4.0;
  EXPECT_EQ(linalg::frobenius_norm(c, a), 5.0);
}

TEST(DenseMatrix, PowerStepConvergesTowardDominantEigenvector) {
  auto c = ctx();
  DenseMatrix a(2, 2);
  a(0, 0) = 3.0;  a(1, 1) = 1.0;
  Vector v{1.0, 1.0}, w;
  double rayleigh = 0.0;
  for (int i = 0; i < 40; ++i) {
    rayleigh = linalg::power_step(c, a, v, w);
    v = w;
  }
  EXPECT_NEAR(std::fabs(v[0]), 1.0, 1e-9);
  EXPECT_NEAR(v[1], 0.0, 1e-9);
  EXPECT_NEAR(rayleigh, 3.0, 1e-9);
}

TEST(DenseMatrix, AddMultAAtMatchesMatmulUnderStrictSemantics) {
  auto c = ctx();
  const DenseMatrix a = sample(5);
  DenseMatrix at(5, 5);
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = 0; j < 5; ++j) at(i, j) = a(j, i);
  }
  DenseMatrix aat;
  linalg::matmul(c, a, at, aat);
  DenseMatrix m(5, 5);
  linalg::add_mult_aAAt(c, 1.0, a, m);
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = 0; j < 5; ++j) {
      EXPECT_NEAR(m(i, j), aat(i, j), 1e-13) << i << "," << j;
    }
  }
}

TEST(DenseMatrix, AddMultAAtIsFmaSensitive) {
  // The Finding 2 mechanism: under FMA contraction the kernel's rounding
  // differs from the strict evaluation.
  const DenseMatrix a = sample(6);
  const auto run = [&](fpsem::FpSemantics sem) {
    auto c = fpsem::uniform_context(fpsem::FnBinding{sem, {}});
    DenseMatrix m(6, 6);
    linalg::add_mult_aAAt(c, 0.7, a, m);
    return m;
  };
  fpsem::FpSemantics fma_sem;
  fma_sem.contract_fma = true;
  EXPECT_NE(run({}), run(fma_sem));
}

TEST(DenseMatrix, AddMultAAtRejectsNonSquare) {
  auto c = ctx();
  DenseMatrix a(2, 3), m(2, 2);
  EXPECT_THROW(linalg::add_mult_aAAt(c, 1.0, a, m), std::invalid_argument);
}

}  // namespace
