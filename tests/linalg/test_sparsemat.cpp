// CSR sparse matrix: construction, SpMV, smoothers, utilities.

#include <gtest/gtest.h>

#include "linalg/sparsemat.h"

namespace {

using namespace flit;
using linalg::SparseMatrix;
using linalg::Vector;

fpsem::EvalContext ctx() { return fpsem::strict_context(); }

/// 1D Laplacian tridiagonal [-1, 2, -1].
SparseMatrix laplacian(std::size_t n) {
  SparseMatrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    a.add(i, i, 2.0);
    if (i > 0) a.add(i, i - 1, -1.0);
    if (i + 1 < n) a.add(i, i + 1, -1.0);
  }
  a.finalize();
  return a;
}

TEST(SparseMatrix, TripletsMergeDuplicates) {
  SparseMatrix a(2, 2);
  a.add(0, 0, 1.0);
  a.add(0, 0, 2.5);
  a.add(1, 0, -1.0);
  a.finalize();
  EXPECT_EQ(a.nnz(), 2u);
  auto c = ctx();
  Vector x{1.0, 0.0}, y;
  linalg::mult(c, a, x, y);
  EXPECT_EQ(y, (Vector{3.5, -1.0}));
}

TEST(SparseMatrix, AddAfterFinalizeRejected) {
  SparseMatrix a(2, 2);
  a.finalize();
  EXPECT_THROW(a.add(0, 0, 1.0), std::logic_error);
}

TEST(SparseMatrix, OutOfRangeTripletRejected) {
  SparseMatrix a(2, 2);
  EXPECT_THROW(a.add(2, 0, 1.0), std::out_of_range);
}

TEST(SparseMatrix, KernelsRequireFinalize) {
  SparseMatrix a(2, 2);
  a.add(0, 0, 1.0);
  auto c = ctx();
  Vector x{1.0, 1.0}, y;
  EXPECT_THROW(linalg::mult(c, a, x, y), std::logic_error);
}

TEST(SparseMatrix, MultMatchesDenseEquivalent) {
  auto c = ctx();
  const SparseMatrix a = laplacian(5);
  Vector x{1.0, 2.0, 3.0, 4.0, 5.0}, y;
  linalg::mult(c, a, x, y);
  EXPECT_EQ(y, (Vector{0.0, 0.0, 0.0, 0.0, 6.0}));
}

TEST(SparseMatrix, DiagExtraction) {
  auto c = ctx();
  const SparseMatrix a = laplacian(4);
  Vector d;
  linalg::diag(c, a, d);
  EXPECT_EQ(d, (Vector{2.0, 2.0, 2.0, 2.0}));
}

TEST(SparseMatrix, ResidualIsZeroAtSolution) {
  auto c = ctx();
  const SparseMatrix a = laplacian(3);
  Vector x{1.0, 1.0, 1.0}, b, r;
  linalg::mult(c, a, x, b);
  linalg::residual(c, a, b, x, r);
  EXPECT_EQ(r, (Vector{0.0, 0.0, 0.0}));
}

TEST(SparseMatrix, GaussSeidelReducesResidual) {
  auto c = ctx();
  const SparseMatrix a = laplacian(8);
  Vector b(8, 1.0), x(8, 0.0), r;
  linalg::residual(c, a, b, x, r);
  const double r0 = linalg::norml2(c, r);
  for (int i = 0; i < 20; ++i) linalg::gauss_seidel(c, a, b, x);
  linalg::residual(c, a, b, x, r);
  EXPECT_LT(linalg::norml2(c, r), 0.5 * r0);
}

TEST(SparseMatrix, GaussSeidelThrowsOnZeroDiagonal) {
  SparseMatrix a(2, 2);
  a.add(0, 1, 1.0);
  a.add(1, 0, 1.0);
  a.finalize();
  auto c = ctx();
  Vector b{1.0, 1.0}, x(2, 0.0);
  EXPECT_THROW(linalg::gauss_seidel(c, a, b, x), std::domain_error);
}

TEST(SparseMatrix, JacobiSmoothConvergesOnDiagonallyDominant) {
  auto c = ctx();
  SparseMatrix a(4, 4);
  for (std::size_t i = 0; i < 4; ++i) {
    a.add(i, i, 4.0);
    if (i + 1 < 4) {
      a.add(i, i + 1, -1.0);
      a.add(i + 1, i, -1.0);
    }
  }
  a.finalize();
  Vector b(4, 1.0), x(4, 0.0), r;
  for (int i = 0; i < 50; ++i) linalg::jacobi_smooth(c, a, b, 0.8, x);
  linalg::residual(c, a, b, x, r);
  EXPECT_LT(linalg::norml2(c, r), 1e-8);
}

TEST(SparseMatrix, RowSumsMatchManual) {
  auto c = ctx();
  const SparseMatrix a = laplacian(4);
  Vector s;
  linalg::row_sums(c, a, s);
  EXPECT_EQ(s, (Vector{1.0, 0.0, 0.0, 1.0}));
}

TEST(SparseMatrix, SpmvIsReassociationSensitiveOnLongRows) {
  // A dense-ish row accumulated with FMA differs from strict.
  SparseMatrix a(1, 40);
  for (std::size_t j = 0; j < 40; ++j) {
    a.add(0, j, 1.0 / static_cast<double>(j + 3));
  }
  a.finalize();
  Vector x(40);
  for (std::size_t j = 0; j < 40; ++j) x[j] = 0.1 * (j + 1);
  const auto run = [&](fpsem::FpSemantics sem) {
    auto c = fpsem::uniform_context(fpsem::FnBinding{sem, {}});
    Vector y;
    linalg::mult(c, a, x, y);
    return y[0];
  };
  fpsem::FpSemantics fma_sem;
  fma_sem.contract_fma = true;
  EXPECT_NE(run({}), run(fma_sem));
}

}  // namespace
