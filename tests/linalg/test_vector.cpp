// Vector kernels under the strict baseline, serialization round-trips and
// the l2 string metric.

#include <cmath>

#include <gtest/gtest.h>

#include "linalg/vector.h"

namespace {

using namespace flit;
using linalg::Vector;

fpsem::EvalContext ctx() { return fpsem::strict_context(); }

Vector iota(std::size_t n) {
  Vector v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = 0.25 * static_cast<double>(i) + 1.0;
  return v;
}

TEST(Vector, DotMatchesManual) {
  auto c = ctx();
  const Vector a = iota(9), b = iota(9);
  double expect = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) expect += a[i] * b[i];
  EXPECT_EQ(linalg::dot(c, a, b), expect);
}

TEST(Vector, DotRejectsSizeMismatch) {
  auto c = ctx();
  EXPECT_THROW((void)linalg::dot(c, iota(3), iota(4)), std::invalid_argument);
}

TEST(Vector, Norml2) {
  auto c = ctx();
  Vector v{3.0, 4.0};
  EXPECT_EQ(linalg::norml2(c, v), 5.0);
}

TEST(Vector, SumAddAxpyScale) {
  auto c = ctx();
  Vector v{1.0, 2.0, 3.0};
  EXPECT_EQ(linalg::sum(c, v), 6.0);
  Vector y{1.0, 1.0, 1.0};
  linalg::add(c, v, y);
  EXPECT_EQ(y, (Vector{2.0, 3.0, 4.0}));
  linalg::axpy(c, 2.0, v, y);
  EXPECT_EQ(y, (Vector{4.0, 7.0, 10.0}));
  linalg::scale(c, 0.5, y);
  EXPECT_EQ(y, (Vector{2.0, 3.5, 5.0}));
}

TEST(Vector, SubtractAndDistance) {
  auto c = ctx();
  Vector a{5.0, 7.0}, b{2.0, 3.0}, out;
  linalg::subtract(c, a, b, out);
  EXPECT_EQ(out, (Vector{3.0, 4.0}));
  EXPECT_EQ(linalg::distance(c, a, b), 5.0);
}

TEST(Vector, WeightedMean) {
  auto c = ctx();
  Vector v{1.0, 3.0}, w{1.0, 1.0};
  EXPECT_EQ(linalg::weighted_mean(c, v, w), 2.0);
}

TEST(Vector, SerializeRoundTripIsLossless) {
  Vector v{0.1, -1.0 / 3.0, 1e-300, 6.02214076e23, 0.0, -0.0};
  const Vector back = linalg::deserialize(linalg::serialize(v));
  ASSERT_EQ(back.size(), v.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_EQ(std::signbit(back[i]), std::signbit(v[i]));
    EXPECT_EQ(back[i], v[i]);
  }
}

TEST(Vector, DeserializeRejectsGarbage) {
  EXPECT_THROW((void)linalg::deserialize("3 0x1p0"), std::invalid_argument);
}

TEST(Vector, L2StringMetricZeroForIdentical) {
  const std::string s = linalg::serialize(iota(8));
  EXPECT_EQ(linalg::l2_string_metric(s, s), 0.0L);
}

TEST(Vector, L2StringMetricAbsoluteAndRelative) {
  Vector a{2.0, 0.0}, b{2.0, 1.0};
  const auto abs_m =
      linalg::l2_string_metric(linalg::serialize(a), linalg::serialize(b));
  EXPECT_EQ(abs_m, 1.0L);
  const auto rel_m = linalg::l2_string_metric(linalg::serialize(a),
                                              linalg::serialize(b), true);
  EXPECT_EQ(rel_m, 0.5L);
}

TEST(Vector, L2StringMetricSizeMismatchIsInfinite) {
  EXPECT_EQ(linalg::l2_string_metric(linalg::serialize(iota(3)),
                                     linalg::serialize(iota(4))),
            HUGE_VALL);
}

}  // namespace
