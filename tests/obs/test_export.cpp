// Unit tests for the trace exporters: RFC 8259 escaping, JSONL schema,
// Chrome trace_event validity (checked with the test-local JSON parser)
// and the synthetic timeline's per-lane monotonicity.

#include <gtest/gtest.h>

#include <cstddef>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "json_check.h"
#include "obs/export.h"
#include "obs/trace.h"

namespace {

using namespace flit;

std::vector<obs::TraceEvent> sample_stream() {
  obs::Tracer tracer;
  tracer.set_enabled(true);
  for (int shard = 0; shard < 2; ++shard) {
    obs::ScopedItem lane(shard, obs::kNoIndex, 0);
    obs::Span shard_span(&tracer, "shard", "dist", "slice");
    for (std::uint64_t idx = static_cast<std::uint64_t>(shard) * 3;
         idx < static_cast<std::uint64_t>(shard) * 3 + 3; ++idx) {
      obs::ScopedItem item(shard, idx, 0);
      obs::Span comp(&tracer, "compilation", "explore", "g++ -O2 \"quoted\"");
      obs::Span run(&tracer, "run", "explore");
      run.set_cost(static_cast<double>(idx) * 2.5);
    }
  }
  return tracer.drain_sorted();
}

TEST(JsonEscape, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(obs::json_escape("plain"), "plain");
  EXPECT_EQ(obs::json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(obs::json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(obs::json_escape("a\nb\tc\rd"), "a\\nb\\tc\\rd");
  EXPECT_EQ(obs::json_escape("\b\f"), "\\b\\f");
  EXPECT_EQ(obs::json_escape(std::string(1, '\x01')), "\\u0001");
  EXPECT_EQ(obs::json_escape(std::string(1, '\x1f')), "\\u001f");
}

TEST(ChromeTrace, IsValidJsonEvenWithHostileDetails) {
  obs::Tracer tracer;
  tracer.set_enabled(true);
  {
    obs::ScopedItem item(0, 1, 0);
    obs::Span span(&tracer, "run\"name", "phase\\cat",
                   "detail with \"quotes\", a \\ and a \n newline");
  }
  const std::string json = obs::chrome_trace_json(tracer.drain_sorted());
  EXPECT_TRUE(flit::test::is_valid_json(json)) << json;
}

TEST(ChromeTrace, EmptyStreamIsAnEmptyTraceObject) {
  const std::string json = obs::chrome_trace_json({});
  EXPECT_EQ(json, "{\"traceEvents\":[]}");
  EXPECT_TRUE(flit::test::is_valid_json(json));
}

/// Extracts every ("tid", "ts") pair in stream order.
std::vector<std::pair<int, long long>> tid_ts_pairs(const std::string& json) {
  std::vector<std::pair<int, long long>> out;
  std::size_t pos = 0;
  while ((pos = json.find("\"tid\":", pos)) != std::string::npos) {
    pos += 6;
    const int tid = std::stoi(json.substr(pos));
    const std::size_t ts_pos = json.find("\"ts\":", pos);
    out.emplace_back(tid, std::stoll(json.substr(ts_pos + 5)));
    pos = ts_pos;
  }
  return out;
}

TEST(ChromeTrace, PerLaneTimestampsAreMonotone) {
  const auto events = sample_stream();
  ASSERT_FALSE(events.empty());
  const std::string json = obs::chrome_trace_json(events);
  ASSERT_TRUE(flit::test::is_valid_json(json)) << json;

  std::map<int, long long> last_ts;
  for (const auto& [tid, ts] : tid_ts_pairs(json)) {
    if (auto it = last_ts.find(tid); it != last_ts.end()) {
      EXPECT_GE(ts, it->second) << "tid " << tid;
    }
    last_ts[tid] = ts;
  }
  // One lane per shard (tid = shard + 1).
  ASSERT_EQ(last_ts.size(), 2u);
  EXPECT_TRUE(last_ts.count(1) == 1 && last_ts.count(2) == 1);
}

TEST(ChromeTrace, RenderingIsDeterministic) {
  const std::string a = obs::chrome_trace_json(sample_stream());
  const std::string b = obs::chrome_trace_json(sample_stream());
  EXPECT_EQ(a, b);
}

TEST(EventsJsonl, OneValidObjectPerLineWithTheDocumentedSchema) {
  const auto events = sample_stream();
  const std::string jsonl = obs::events_jsonl(events);

  std::istringstream lines(jsonl);
  std::string line;
  std::size_t n = 0;
  while (std::getline(lines, line)) {
    ASSERT_TRUE(flit::test::is_valid_json(line)) << line;
    for (const char* key : {"\"name\":", "\"phase\":", "\"detail\":",
                            "\"shard\":", "\"index\":", "\"attempt\":",
                            "\"begin\":", "\"end\":", "\"cost\":"}) {
      EXPECT_NE(line.find(key), std::string::npos) << key << " in " << line;
    }
    ++n;
  }
  EXPECT_EQ(n, events.size());
}

TEST(EventsJsonl, NoIndexRendersAsMinusOne) {
  obs::TraceEvent e;
  e.name = "anchor";
  e.phase = "baseline";
  const std::string line = obs::events_jsonl({e});
  EXPECT_NE(line.find("\"index\":-1"), std::string::npos) << line;
}

TEST(Exporters, CostsRenderRoundTripExact) {
  obs::TraceEvent e;
  e.name = "run";
  e.phase = "p";
  e.cost = 451881.2501220703125;  // needs %.17g, not %g
  const std::string jsonl = obs::events_jsonl({e});
  const double parsed =
      std::stod(jsonl.substr(jsonl.find("\"cost\":") + 7));
  EXPECT_EQ(parsed, e.cost);
}

}  // namespace
