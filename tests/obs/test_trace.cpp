// Unit tests for the tracing half of src/obs: span lifecycle and nesting
// (tick reconstruction), ScopedItem stamping, the inertness of disabled
// tracers, and the determinism of drain_sorted() under multi-threaded
// recording.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "obs/trace.h"

namespace {

using namespace flit;

obs::TraceEvent only_event(obs::Tracer& t) {
  const auto events = t.drain_sorted();
  EXPECT_EQ(events.size(), 1u);
  return events.empty() ? obs::TraceEvent{} : events.front();
}

TEST(Span, RecordsStampAndTicks) {
  obs::Tracer tracer;
  tracer.set_enabled(true);
  {
    obs::ScopedItem item(3, 17, 2);
    obs::Span span(&tracer, "build", "explore", "g++ -O2");
    span.set_cost(123.5);
  }
  const obs::TraceEvent e = only_event(tracer);
  EXPECT_EQ(e.name, "build");
  EXPECT_EQ(e.phase, "explore");
  EXPECT_EQ(e.detail, "g++ -O2");
  EXPECT_EQ(e.shard, 3);
  EXPECT_EQ(e.index, 17u);
  EXPECT_EQ(e.attempt, 2);
  EXPECT_EQ(e.begin_tick, 0u);
  EXPECT_EQ(e.end_tick, 1u);
  EXPECT_EQ(e.cost, 123.5);
}

TEST(Span, NestingIsReconstructibleFromTicks) {
  obs::Tracer tracer;
  tracer.set_enabled(true);
  {
    obs::ScopedItem item(0, 5, 0);
    obs::Span outer(&tracer, "outer", "p");
    {
      obs::Span inner1(&tracer, "inner1", "p");
    }
    {
      obs::Span inner2(&tracer, "inner2", "p");
    }
  }
  auto events = tracer.drain_sorted();
  ASSERT_EQ(events.size(), 3u);
  // drain order: sorted by begin tick -- outer (0), inner1 (1), inner2 (3).
  const obs::TraceEvent& outer = events[0];
  const obs::TraceEvent& inner1 = events[1];
  const obs::TraceEvent& inner2 = events[2];
  EXPECT_EQ(outer.name, "outer");
  EXPECT_EQ(inner1.name, "inner1");
  EXPECT_EQ(inner2.name, "inner2");
  // Containment: outer's [begin, end) interval covers both inner spans,
  // and the siblings do not overlap.
  EXPECT_LT(outer.begin_tick, inner1.begin_tick);
  EXPECT_GT(outer.end_tick, inner2.end_tick);
  EXPECT_LT(inner1.end_tick, inner2.begin_tick);
}

TEST(Span, NullOrDisabledTracerIsInert) {
  obs::Span null_span(nullptr, "a", "b");  // must not crash

  obs::Tracer tracer;  // disabled by default
  {
    obs::Span span(&tracer, "a", "b");
  }
  EXPECT_TRUE(tracer.drain_sorted().empty());

  // Enabling after construction must not resurrect the span: the decision
  // is taken at open time so begin/end ticks stay consistent.
  {
    obs::Span span(&tracer, "late", "b");
    tracer.set_enabled(true);
  }
  EXPECT_TRUE(tracer.drain_sorted().empty());
  tracer.set_enabled(false);
}

TEST(ScopedItem, SavesAndRestoresTheContext) {
  EXPECT_EQ(obs::current_item().index, obs::kNoIndex);
  {
    obs::ScopedItem outer(1, 10, 0);
    EXPECT_EQ(obs::current_item().shard, 1);
    EXPECT_EQ(obs::current_item().index, 10u);
    {
      obs::ScopedItem inner(2, 20, 3);
      EXPECT_EQ(obs::current_item().shard, 2);
      EXPECT_EQ(obs::current_item().index, 20u);
      EXPECT_EQ(obs::current_item().attempt, 3);
    }
    // Restored, including the outer tick clock.
    EXPECT_EQ(obs::current_item().shard, 1);
    EXPECT_EQ(obs::current_item().index, 10u);
  }
  EXPECT_EQ(obs::current_item().index, obs::kNoIndex);
}

TEST(ScopedItem, FreshTickClockPerItem) {
  obs::Tracer tracer;
  tracer.set_enabled(true);
  for (std::uint64_t idx : {7u, 8u}) {
    obs::ScopedItem item(0, idx, 0);
    obs::Span span(&tracer, "run", "p");
  }
  const auto events = tracer.drain_sorted();
  ASSERT_EQ(events.size(), 2u);
  // Both items start their local clock at zero.
  EXPECT_EQ(events[0].begin_tick, 0u);
  EXPECT_EQ(events[1].begin_tick, 0u);
  EXPECT_EQ(events[0].index, 7u);
  EXPECT_EQ(events[1].index, 8u);
}

TEST(Tracer, DrainedStreamIsIdenticalAcrossThreadAssignments) {
  // The same logical work recorded under different thread partitions must
  // drain to the same event stream -- the property that makes traces
  // comparable across --jobs counts.
  const auto record_item = [](obs::Tracer& t, int shard, std::uint64_t idx) {
    obs::ScopedItem item(shard, idx, 0);
    obs::Span outer(&t, "compilation", "explore");
    obs::Span inner(&t, "run", "explore");
    inner.set_cost(static_cast<double>(idx) * 10.0);
  };

  obs::Tracer serial;
  serial.set_enabled(true);
  for (std::uint64_t i = 0; i < 16; ++i) {
    record_item(serial, static_cast<int>(i % 2), i);
  }
  const auto expected = serial.drain_sorted();

  obs::Tracer threaded;
  threaded.set_enabled(true);
  std::vector<std::thread> workers;
  workers.reserve(4);
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([&threaded, w, &record_item] {
      // Interleave items across threads in a scattered order.
      for (std::uint64_t i = static_cast<std::uint64_t>(w); i < 16; i += 4) {
        const std::uint64_t idx = 15 - i;  // scattered, reversed order
        record_item(threaded, static_cast<int>(idx % 2), idx);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(threaded.drain_sorted(), expected);
}

TEST(Tracer, DrainClearsAndEpochInvalidatesCachedBuffers) {
  obs::Tracer tracer;
  tracer.set_enabled(true);
  {
    obs::Span span(&tracer, "one", "p");
  }
  EXPECT_EQ(tracer.drain_sorted().size(), 1u);
  EXPECT_TRUE(tracer.drain_sorted().empty());

  // Recording from this same thread after a drain must land in a fresh
  // buffer (the epoch bump invalidated the cached pointer).
  {
    obs::Span span(&tracer, "two", "p");
  }
  const auto events = tracer.drain_sorted();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "two");
}

TEST(Tracer, EventOrderIsLexicographicOnTheStamp) {
  obs::TraceEvent a;
  a.shard = 0;
  a.index = 2;
  obs::TraceEvent b;
  b.shard = 1;
  b.index = 1;
  EXPECT_TRUE(obs::trace_event_less(a, b));  // shard dominates

  obs::TraceEvent no_index;
  no_index.shard = 0;
  no_index.index = obs::kNoIndex;
  EXPECT_TRUE(obs::trace_event_less(a, no_index));  // kNoIndex sorts last
}

}  // namespace
