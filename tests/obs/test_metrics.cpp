// Unit tests for the metrics half of src/obs: fixed-point accumulation,
// histogram observation and merge identities, snapshot merge semantics
// (counters sum, gauges max, histograms sum-with-matching-bounds), and
// the registry's handle-stability contract across reset().

#include <gtest/gtest.h>

#include <stdexcept>
#include <thread>
#include <vector>

#include "json_check.h"
#include "obs/metrics.h"

namespace {

using namespace flit;

TEST(FixedPoint, RoundTripsRepresentableValues) {
  // Multiples of 1/1024 round-trip exactly; everything else rounds to the
  // nearest unit.
  EXPECT_EQ(obs::from_fixed(obs::to_fixed(0.0)), 0.0);
  EXPECT_EQ(obs::from_fixed(obs::to_fixed(1.5)), 1.5);
  EXPECT_EQ(obs::from_fixed(obs::to_fixed(-2.25)), -2.25);
  EXPECT_EQ(obs::from_fixed(obs::to_fixed(123456.0)), 123456.0);
  EXPECT_NEAR(obs::from_fixed(obs::to_fixed(0.3)), 0.3,
              1.0 / obs::kFixedPointScale);
}

TEST(HistogramData, ObservesIntoTheRightBuckets) {
  obs::HistogramData h({1.0, 10.0, 100.0});
  ASSERT_EQ(h.counts.size(), 4u);  // 3 bounds + overflow

  h.observe(0.5);    // <= 1
  h.observe(1.0);    // <= 1 (inclusive upper bound)
  h.observe(5.0);    // <= 10
  h.observe(100.0);  // <= 100
  h.observe(1e6);    // overflow

  EXPECT_EQ(h.counts[0], 2u);
  EXPECT_EQ(h.counts[1], 1u);
  EXPECT_EQ(h.counts[2], 1u);
  EXPECT_EQ(h.counts[3], 1u);
  EXPECT_EQ(h.count, 5u);
  EXPECT_EQ(h.min_value(), 0.5);
  EXPECT_EQ(h.max_value(), 1e6);
}

TEST(HistogramData, SumIsOrderIndependent) {
  // The fixed-point accumulator makes the sum associative: any permutation
  // of observations produces bitwise-equal state.
  const std::vector<double> values = {3.25, 0.125, 977.5, 41.0, 0.0078125};
  obs::HistogramData forward({1.0, 100.0});
  obs::HistogramData backward({1.0, 100.0});
  for (double v : values) forward.observe(v);
  for (auto it = values.rbegin(); it != values.rend(); ++it) {
    backward.observe(*it);
  }
  EXPECT_EQ(forward, backward);
}

TEST(HistogramData, MergeEqualsObservingTheUnion) {
  obs::HistogramData a({2.0, 8.0, 32.0});
  obs::HistogramData b({2.0, 8.0, 32.0});
  obs::HistogramData whole({2.0, 8.0, 32.0});
  for (double v : {1.0, 3.0, 100.0}) {
    a.observe(v);
    whole.observe(v);
  }
  for (double v : {0.5, 9.0, 31.0}) {
    b.observe(v);
    whole.observe(v);
  }
  a += b;
  EXPECT_EQ(a, whole);
}

TEST(HistogramData, MergeWithEmptyIsIdentity) {
  obs::HistogramData h({1.0, 10.0});
  h.observe(4.0);
  const obs::HistogramData before = h;
  h += obs::HistogramData({1.0, 10.0});
  EXPECT_EQ(h, before);

  obs::HistogramData empty({1.0, 10.0});
  empty += before;
  EXPECT_EQ(empty, before);
}

TEST(HistogramData, MergeRejectsMismatchedBounds) {
  obs::HistogramData a({1.0, 10.0});
  obs::HistogramData b({1.0, 100.0});
  EXPECT_THROW(a += b, std::invalid_argument);
}

TEST(HistogramData, QuantileIsExactAtTheExtremes) {
  obs::HistogramData h(obs::exponential_buckets(1.0, 2.0, 20));
  for (double v : {3.0, 17.0, 220.0, 1000.0}) h.observe(v);
  EXPECT_EQ(h.quantile(0.0), 3.0);
  EXPECT_EQ(h.quantile(1.0), 1000.0);
  // The interior is bucket-interpolated but must stay within [min, max].
  const double med = h.quantile(0.5);
  EXPECT_GE(med, 3.0);
  EXPECT_LE(med, 1000.0);
  EXPECT_EQ(obs::HistogramData({1.0}).quantile(0.5), 0.0);  // empty
}

TEST(ExponentialBuckets, AreGeometric) {
  const auto b = obs::exponential_buckets(1.0, 4.0, 5);
  ASSERT_EQ(b.size(), 5u);
  EXPECT_EQ(b, (std::vector<double>{1.0, 4.0, 16.0, 64.0, 256.0}));
  EXPECT_EQ(obs::cycle_buckets().size(), 40u);
  EXPECT_EQ(obs::cycle_buckets().front(), 1.0);
}

TEST(MetricsSnapshot, CountersSumGaugesMaxHistogramsMerge) {
  obs::MetricsSnapshot a;
  a.counters["runs"] = 3;
  a.counters["only_a"] = 1;
  a.gauges["space"] = 244;
  a.histograms.emplace("cycles", obs::HistogramData({10.0}));
  a.histograms.at("cycles").observe(4.0);

  obs::MetricsSnapshot b;
  b.counters["runs"] = 5;
  b.counters["only_b"] = 7;
  b.gauges["space"] = 100;  // lower level: the merged gauge keeps the peak
  b.histograms.emplace("cycles", obs::HistogramData({10.0}));
  b.histograms.at("cycles").observe(40.0);

  obs::MetricsSnapshot merged = a;
  merged += b;
  EXPECT_EQ(merged.counters.at("runs"), 8u);
  EXPECT_EQ(merged.counters.at("only_a"), 1u);
  EXPECT_EQ(merged.counters.at("only_b"), 7u);
  EXPECT_EQ(merged.gauges.at("space"), 244);
  EXPECT_EQ(merged.histograms.at("cycles").count, 2u);
  EXPECT_EQ(merged.histograms.at("cycles").min_value(), 4.0);
  EXPECT_EQ(merged.histograms.at("cycles").max_value(), 40.0);
}

TEST(MetricsSnapshot, MergeIsCommutativeAndAssociative) {
  const auto make = [](std::uint64_t runs, std::int64_t level, double obs_v) {
    obs::MetricsSnapshot s;
    s.counters["runs"] = runs;
    s.gauges["level"] = level;
    s.histograms.emplace("h", obs::HistogramData({8.0}));
    s.histograms.at("h").observe(obs_v);
    return s;
  };
  const auto a = make(1, 10, 2.0);
  const auto b = make(2, 30, 9.0);
  const auto c = make(4, 20, 7.5);

  EXPECT_EQ(a + b, b + a);
  EXPECT_EQ((a + b) + c, a + (b + c));
}

TEST(MetricsSnapshot, EqualSnapshotsRenderEqualJsonBytes) {
  const auto make = [] {
    obs::MetricsSnapshot s;
    s.counters["z.last"] = 2;
    s.counters["a.first"] = 1;
    s.gauges["g"] = -5;
    s.histograms.emplace("h", obs::HistogramData({1.0, 2.0}));
    s.histograms.at("h").observe(1.5);
    return s;
  };
  const std::string j1 = make().json();
  const std::string j2 = make().json();
  EXPECT_EQ(j1, j2);
  EXPECT_TRUE(flit::test::is_valid_json(j1)) << j1;
  // std::map ordering: "a.first" renders before "z.last".
  EXPECT_LT(j1.find("a.first"), j1.find("z.last"));
}

TEST(MetricsRegistry, HandlesAreStableAcrossReset) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("hits");
  obs::Gauge& g = reg.gauge("level");
  obs::Histogram& h = reg.histogram("cycles", {1.0, 10.0});
  c.add(5);
  g.set(9);
  h.observe(3.0);

  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(h.data().count, 0u);
  EXPECT_EQ(h.bounds(), (std::vector<double>{1.0, 10.0}));  // kept

  // The same references keep working after the reset.
  c.add(2);
  h.observe(5.0);
  EXPECT_EQ(&reg.counter("hits"), &c);
  EXPECT_EQ(&reg.histogram("cycles", {1.0, 10.0}), &h);
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("hits"), 2u);
  EXPECT_EQ(snap.histograms.at("cycles").count, 1u);
}

TEST(MetricsRegistry, RejectsHistogramReRegistrationWithOtherBounds) {
  obs::MetricsRegistry reg;
  (void)reg.histogram("cycles", {1.0, 10.0});
  EXPECT_THROW((void)reg.histogram("cycles", {1.0, 100.0}),
               std::invalid_argument);
  EXPECT_NO_THROW((void)reg.histogram("cycles", {1.0, 10.0}));
}

TEST(MetricsRegistry, ConcurrentAddsAreLossless) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("n");
  obs::Histogram& h = reg.histogram("v", {8.0, 64.0});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c, &h] {
      for (int k = 0; k < kPerThread; ++k) {
        c.add();
        h.observe(16.0);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads * kPerThread));
  const auto d = h.data();
  EXPECT_EQ(d.count, static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(d.sum, obs::to_fixed(16.0) * kThreads * kPerThread);
}

}  // namespace
