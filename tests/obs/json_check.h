#pragma once

// Minimal recursive-descent JSON validator for the exporter tests: checks
// well-formedness (RFC 8259 grammar, without the nesting-depth and number
// -range liberties real parsers take), not semantics.  Header-only and
// test-local on purpose -- the library must not grow a JSON parser for
// the sake of its own tests.

#include <cctype>
#include <cstddef>
#include <string>

namespace flit::test {

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  /// True when the whole input is exactly one valid JSON value.
  [[nodiscard]] bool valid() {
    i_ = 0;
    if (!value()) return false;
    skip_ws();
    return i_ == s_.size();
  }

 private:
  void skip_ws() {
    while (i_ < s_.size() &&
           (s_[i_] == ' ' || s_[i_] == '\t' || s_[i_] == '\n' ||
            s_[i_] == '\r')) {
      ++i_;
    }
  }

  bool literal(const char* lit) {
    const std::size_t n = std::string(lit).size();
    if (s_.compare(i_, n, lit) != 0) return false;
    i_ += n;
    return true;
  }

  bool string() {
    if (i_ >= s_.size() || s_[i_] != '"') return false;
    ++i_;
    while (i_ < s_.size()) {
      const unsigned char c = static_cast<unsigned char>(s_[i_]);
      if (c == '"') {
        ++i_;
        return true;
      }
      if (c < 0x20) return false;  // raw control character
      if (c == '\\') {
        ++i_;
        if (i_ >= s_.size()) return false;
        const char e = s_[i_];
        if (e == 'u') {
          for (int k = 1; k <= 4; ++k) {
            if (i_ + static_cast<std::size_t>(k) >= s_.size() ||
                std::isxdigit(static_cast<unsigned char>(
                    s_[i_ + static_cast<std::size_t>(k)])) == 0) {
              return false;
            }
          }
          i_ += 4;
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                   e != 'f' && e != 'n' && e != 'r' && e != 't') {
          return false;
        }
      }
      ++i_;
    }
    return false;  // unterminated
  }

  bool number() {
    const std::size_t start = i_;
    if (i_ < s_.size() && s_[i_] == '-') ++i_;
    if (i_ >= s_.size() || std::isdigit(static_cast<unsigned char>(s_[i_])) == 0) {
      return false;
    }
    if (s_[i_] == '0') {
      ++i_;
    } else {
      while (i_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[i_])) != 0) {
        ++i_;
      }
    }
    if (i_ < s_.size() && s_[i_] == '.') {
      ++i_;
      if (i_ >= s_.size() ||
          std::isdigit(static_cast<unsigned char>(s_[i_])) == 0) {
        return false;
      }
      while (i_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[i_])) != 0) {
        ++i_;
      }
    }
    if (i_ < s_.size() && (s_[i_] == 'e' || s_[i_] == 'E')) {
      ++i_;
      if (i_ < s_.size() && (s_[i_] == '+' || s_[i_] == '-')) ++i_;
      if (i_ >= s_.size() ||
          std::isdigit(static_cast<unsigned char>(s_[i_])) == 0) {
        return false;
      }
      while (i_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[i_])) != 0) {
        ++i_;
      }
    }
    return i_ > start;
  }

  bool object() {
    if (s_[i_] != '{') return false;
    ++i_;
    skip_ws();
    if (i_ < s_.size() && s_[i_] == '}') {
      ++i_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (i_ >= s_.size() || s_[i_] != ':') return false;
      ++i_;
      if (!value()) return false;
      skip_ws();
      if (i_ >= s_.size()) return false;
      if (s_[i_] == '}') {
        ++i_;
        return true;
      }
      if (s_[i_] != ',') return false;
      ++i_;
    }
  }

  bool array() {
    if (s_[i_] != '[') return false;
    ++i_;
    skip_ws();
    if (i_ < s_.size() && s_[i_] == ']') {
      ++i_;
      return true;
    }
    while (true) {
      if (!value()) return false;
      skip_ws();
      if (i_ >= s_.size()) return false;
      if (s_[i_] == ']') {
        ++i_;
        return true;
      }
      if (s_[i_] != ',') return false;
      ++i_;
    }
  }

  bool value() {
    skip_ws();
    if (i_ >= s_.size()) return false;
    switch (s_[i_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  const std::string& s_;
  std::size_t i_ = 0;
};

/// Convenience wrapper: is `text` one well-formed JSON value?
[[nodiscard]] inline bool is_valid_json(const std::string& text) {
  return JsonChecker(text).valid();
}

}  // namespace flit::test
