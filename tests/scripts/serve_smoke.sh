#!/usr/bin/env bash
# CLI smoke test for `flit serve` request admission and a small service run.
#
#   1. a request file with a duplicate id must be rejected at the door,
#      before any study runs, and the error must name the offending id;
#   2. a request naming an unknown test must be rejected the same way;
#   3. a well-formed three-tenant stream (one request a byte-for-byte
#      duplicate of another) must complete, write per-request state and
#      per-tenant event streams, and report the dedup on stderr.
#
# Usage: serve_smoke.sh <path-to-flit-binary>

set -u

flit=${1:?usage: serve_smoke.sh <flit-binary>}
workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

# --- duplicate request ids are rejected naming the id --------------------
cat > "$workdir/dup.jsonl" <<'EOF'
{"id":"s1","test":"MFEM_ex1","limit":6}
{"id":"s1","test":"MFEM_ex2","limit":6}
EOF
err=$("$flit" serve "$workdir/dup.jsonl" 2>&1 >/dev/null)
status=$?
if [ "$status" -eq 0 ]; then
  echo "FAIL: a request file with duplicate ids was admitted" >&2
  exit 1
fi
case "$err" in
  *"duplicate request id 's1'"*) ;;
  *)
    echo "FAIL: the duplicate-id rejection does not name the id:" >&2
    echo "$err" >&2
    exit 1
    ;;
esac

# --- unknown tests are rejected before any study runs --------------------
cat > "$workdir/unknown.jsonl" <<'EOF'
{"id":"s1","test":"NoSuchTest"}
EOF
err=$("$flit" serve "$workdir/unknown.jsonl" 2>&1 >/dev/null)
status=$?
if [ "$status" -eq 0 ]; then
  echo "FAIL: a request for an unknown test was admitted" >&2
  exit 1
fi
case "$err" in
  *"unknown test"*) ;;
  *)
    echo "FAIL: the unknown-test rejection is not diagnosed:" >&2
    echo "$err" >&2
    exit 1
    ;;
esac

# --- a small three-tenant stream completes with state and streams --------
cat > "$workdir/reqs.jsonl" <<'EOF'
# two distinct studies plus one byte-for-byte duplicate of the first
{"id":"s1","tenant":"alice","test":"MFEM_ex1","compilers":["g++"],"limit":8}
{"id":"s2","tenant":"bob","test":"MFEM_ex2","compilers":["clang++"],"limit":8}
{"id":"s3","tenant":"carol","test":"MFEM_ex1","compilers":["g++"],"limit":8}
EOF
err=$("$flit" serve "$workdir/reqs.jsonl" --state-dir "$workdir/state" \
      --stream-out "$workdir/streams" --shards 2 --jobs 2 \
      --cache-budget 262144 2>&1 >/dev/null)
status=$?
if [ "$status" -ne 0 ]; then
  echo "FAIL: the three-tenant serve run did not complete:" >&2
  echo "$err" >&2
  exit 1
fi
for id in s1 s2 s3; do
  for ext in tsv csv; do
    if [ ! -s "$workdir/state/$id.$ext" ]; then
      echo "FAIL: request $id left no state $ext" >&2
      exit 1
    fi
  done
done
if ! cmp -s "$workdir/state/s1.tsv" "$workdir/state/s3.tsv"; then
  echo "FAIL: the deduplicated request's database is not byte-identical" >&2
  exit 1
fi
for tenant in alice bob carol; do
  if ! grep -q '"event":"done"' "$workdir/streams/$tenant.jsonl"; then
    echo "FAIL: tenant $tenant's event stream has no completion event" >&2
    exit 1
  fi
done
case "$err" in
  *"deduplicated"*) ;;
  *)
    echo "FAIL: the summary does not report the deduplicated request:" >&2
    echo "$err" >&2
    exit 1
    ;;
esac

echo "PASS: strict admission rejected bad request files and a 3-tenant" \
     "stream (1 deduplicated) completed with per-tenant state and streams"
