#!/usr/bin/env bash
# Kill-then-resume smoke test for `flit explore --db/--resume`.
#
#   1. an uninterrupted run writes the reference database,
#   2. a run with the injector's kill site armed (FLIT_FAULTS=kill:2:0)
#      dies right after its second checkpoint batch and must exit nonzero
#      with a partial database on disk,
#   3. `--resume` at a different jobs count completes the study,
#   4. the resumed database must be byte-identical to the reference.
#
# In sharded mode the killed run partitions the space with --shards 2 and
# checkpoints into per-shard databases (--shard-db-dir); --resume stitches
# the partial shard checkpoints and the *converged* database (--db) must be
# byte-identical to the unsharded reference.
#
# In supervised mode the run also arms the injector's shard site, so a rank
# dies mid-claim and the fleet supervisor must restart it:
#   a. with only the shard site armed the run completes, the report counts
#      at least one recovered rank fault, and the converged database is
#      byte-identical to the unfaulted reference,
#   b. with the kill site added the process dies at its second checkpoint
#      batch -- after the supervisor has been exercised -- leaving partial
#      shard checkpoints,
#   c. a disarmed --resume stitches them to the same byte-identical
#      converged database.
#
# In serve mode the daemon runs two tenants' studies from a JSONL request
# stream with per-request state databases:
#   a. solo one-shot references are recorded for both tests,
#   b. a serve run with the kill site armed dies after a tenant's second
#      durable checkpoint, leaving partial per-request databases and a
#      truncated event stream,
#   c. a disarmed `serve --resume` restart completes the stream, and every
#      tenant's converged database must be byte-identical to its solo
#      reference.
#
# Usage: resume_smoke.sh <path-to-flit-binary> [sharded|supervised|serve]

set -u

flit=${1:?usage: resume_smoke.sh <flit-binary> [sharded]}
mode=${2:-plain}
workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

ref="$workdir/ref.tsv"
db="$workdir/resume.tsv"

if [ "$mode" = "serve" ]; then
  state="$workdir/state"
  streams="$workdir/streams"
  reqs="$workdir/requests.jsonl"
  cat > "$reqs" <<'EOF'
{"id":"r12","tenant":"alice","test":"MFEM_ex12"}
{"id":"r13","tenant":"bob","test":"MFEM_ex13"}
EOF

  # Solo one-shot references: the bytes every tenant's converged database
  # must match no matter how the service was killed and resumed.
  ref12="$workdir/ref12.tsv"
  ref13="$workdir/ref13.tsv"
  "$flit" explore MFEM_ex12 --db "$ref12" --jobs 4 >/dev/null || {
    echo "FAIL: reference explore MFEM_ex12 did not complete" >&2
    exit 1
  }
  "$flit" explore MFEM_ex13 --db "$ref13" --jobs 4 >/dev/null || {
    echo "FAIL: reference explore MFEM_ex13 did not complete" >&2
    exit 1
  }

  # Kill the daemon after a tenant's second durable checkpoint: partial
  # per-request databases must be on disk, neither stream complete.
  FLIT_FAULTS=kill:2:0 "$flit" serve "$reqs" --state-dir "$state" \
    --stream-out "$streams" --shards 2 --jobs 2 >/dev/null 2>&1
  status=$?
  if [ "$status" -eq 0 ]; then
    echo "FAIL: the killed serve run exited 0" >&2
    exit 1
  fi
  partial=$(cat "$state"/r1?.tsv 2>/dev/null | wc -l)
  total=$(($(wc -l < "$ref12") + $(wc -l < "$ref13")))
  if [ "$partial" -eq 0 ]; then
    echo "FAIL: the killed serve run left no request checkpoints" >&2
    exit 1
  fi
  if [ "$partial" -ge "$total" ]; then
    echo "FAIL: the killed serve run completed ($partial of $total rows)" >&2
    exit 1
  fi

  # Disarmed restart with --resume: prefills every request from its
  # checkpoint and converges each tenant's database to the solo bytes.
  "$flit" serve "$reqs" --state-dir "$state" --stream-out "$streams" \
    --shards 2 --jobs 4 --resume >/dev/null 2>&1 || {
    echo "FAIL: serve --resume did not complete" >&2
    exit 1
  }
  if ! cmp -s "$ref12" "$state/r12.tsv"; then
    echo "FAIL: tenant alice's converged database differs from the solo" \
         "reference" >&2
    diff "$ref12" "$state/r12.tsv" | head -20 >&2
    exit 1
  fi
  if ! cmp -s "$ref13" "$state/r13.tsv"; then
    echo "FAIL: tenant bob's converged database differs from the solo" \
         "reference" >&2
    diff "$ref13" "$state/r13.tsv" | head -20 >&2
    exit 1
  fi
  for tenant in alice bob; do
    if ! grep -q '"event":"done"' "$streams/$tenant.jsonl"; then
      echo "FAIL: tenant $tenant's event stream has no completion event" >&2
      exit 1
    fi
  done

  echo "PASS: daemon killed at checkpoint 2 ($partial/$total rows)," \
       "resumed to per-tenant databases byte-identical to solo runs"
  exit 0
fi

"$flit" explore MFEM_ex12 --db "$ref" --jobs 4 >/dev/null || {
  echo "FAIL: reference explore did not complete" >&2
  exit 1
}

if [ "$mode" = "supervised" ]; then
  shard_dir="$workdir/shards"
  rep="$workdir/supervised_report.txt"

  # shard:0.05:3 is seed-picked to fire on this space at 2 shards (the
  # injector hashes site x seed x rank context x claim key, so firing
  # seeds are per-configuration).  The supervisor must recover every
  # fault and still converge to the unfaulted reference bytes.
  FLIT_FAULTS=shard:0.05:3 "$flit" explore MFEM_ex12 --shards 2 \
    --shard-db-dir "$shard_dir" --db "$db" --jobs 2 2>"$rep" >/dev/null || {
    echo "FAIL: the supervised faulted run did not complete" >&2
    cat "$rep" >&2
    exit 1
  }
  faults=$(sed -n 's/.*supervisor: \([0-9][0-9]*\) rank fault(s).*/\1/p' "$rep")
  if [ -z "$faults" ] || [ "$faults" -eq 0 ]; then
    echo "FAIL: the supervised run recovered no rank fault" >&2
    cat "$rep" >&2
    exit 1
  fi
  if ! cmp -s "$ref" "$db"; then
    echo "FAIL: the recovered database differs from the unfaulted" \
         "reference" >&2
    diff "$ref" "$db" | head -20 >&2
    exit 1
  fi

  # Same faults plus a kill at the second checkpoint batch: the process
  # must die with partial shard checkpoints on disk.
  rm -rf "$shard_dir"
  rm -f "$db"
  FLIT_FAULTS=shard:0.05:3,kill:2:0 "$flit" explore MFEM_ex12 --shards 2 \
    --shard-db-dir "$shard_dir" --db "$db" --jobs 2 >/dev/null 2>&1
  status=$?
  if [ "$status" -eq 0 ]; then
    echo "FAIL: the killed supervised run exited 0" >&2
    exit 1
  fi
  partial=$(cat "$shard_dir"/shard-*-of-2.tsv 2>/dev/null | wc -l)
  total=$(wc -l < "$ref")
  if [ "$partial" -eq 0 ]; then
    echo "FAIL: the killed supervised run left no shard checkpoints" >&2
    exit 1
  fi
  if [ "$partial" -ge "$total" ]; then
    echo "FAIL: the killed supervised run completed" \
         "($partial of $total rows)" >&2
    exit 1
  fi

  # Disarmed resume: stitches the supervised checkpoints to the same
  # converged bytes as the uninterrupted unfaulted run.
  "$flit" explore MFEM_ex12 --shards 2 --shard-db-dir "$shard_dir" \
    --db "$db" --resume --jobs 4 >/dev/null 2>&1 || {
    echo "FAIL: supervised --resume did not complete" >&2
    exit 1
  }
  if ! cmp -s "$ref" "$db"; then
    echo "FAIL: the resumed converged database differs from the unfaulted" \
         "reference" >&2
    diff "$ref" "$db" | head -20 >&2
    exit 1
  fi

  echo "PASS: recovered $faults rank fault(s), killed at batch 2" \
       "($partial/$total shard rows), resumed to a byte-identical" \
       "converged database"
  exit 0
fi

if [ "$mode" = "sharded" ]; then
  shard_dir="$workdir/shards"

  FLIT_FAULTS=kill:2:0 "$flit" explore MFEM_ex12 --shards 2 \
    --shard-db-dir "$shard_dir" --db "$db" --jobs 2 >/dev/null 2>&1
  status=$?
  if [ "$status" -eq 0 ]; then
    echo "FAIL: the killed sharded run exited 0" >&2
    exit 1
  fi
  # The kill fires while a shard is checkpointing, before the merge, so
  # the partial state lives in the shard databases, not the converged one.
  partial=$(cat "$shard_dir"/shard-*-of-2.tsv 2>/dev/null | wc -l)
  if [ "$partial" -eq 0 ]; then
    echo "FAIL: the killed sharded run left no shard checkpoints" >&2
    exit 1
  fi
  total=$(wc -l < "$ref")
  if [ "$partial" -ge "$total" ]; then
    echo "FAIL: the killed sharded run completed ($partial of $total rows)" >&2
    exit 1
  fi

  "$flit" explore MFEM_ex12 --shards 2 --shard-db-dir "$shard_dir" \
    --db "$db" --resume --jobs 4 >/dev/null 2>&1 || {
    echo "FAIL: sharded --resume did not complete" >&2
    exit 1
  }

  if ! cmp -s "$ref" "$db"; then
    echo "FAIL: the stitched converged database differs from the" \
         "unsharded reference" >&2
    diff "$ref" "$db" | head -20 >&2
    exit 1
  fi

  echo "PASS: killed at batch 2 ($partial/$total shard rows), stitched 2" \
       "shards into a byte-identical converged database"
  exit 0
fi

FLIT_FAULTS=kill:2:0 "$flit" explore MFEM_ex12 --db "$db" --jobs 2 \
  >/dev/null 2>&1
status=$?
if [ "$status" -eq 0 ]; then
  echo "FAIL: the killed run exited 0" >&2
  exit 1
fi
if [ ! -s "$db" ]; then
  echo "FAIL: the killed run left no partial database" >&2
  exit 1
fi
partial=$(wc -l < "$db")
total=$(wc -l < "$ref")
if [ "$partial" -ge "$total" ]; then
  echo "FAIL: the killed run completed ($partial of $total rows)" >&2
  exit 1
fi

"$flit" explore MFEM_ex12 --db "$db" --resume --jobs 8 >/dev/null || {
  echo "FAIL: --resume did not complete" >&2
  exit 1
}

if ! cmp -s "$ref" "$db"; then
  echo "FAIL: resumed database differs from the uninterrupted reference" >&2
  diff "$ref" "$db" | head -20 >&2
  exit 1
fi

echo "PASS: killed at batch 2 ($partial/$total rows), resumed to a" \
     "byte-identical database"
