#!/usr/bin/env bash
# Kill-then-resume smoke test for `flit explore --db/--resume`.
#
#   1. an uninterrupted run writes the reference database,
#   2. a run with the injector's kill site armed (FLIT_FAULTS=kill:2:0)
#      dies right after its second checkpoint batch and must exit nonzero
#      with a partial database on disk,
#   3. `--resume` at a different jobs count completes the study,
#   4. the resumed database must be byte-identical to the reference.
#
# Usage: resume_smoke.sh <path-to-flit-binary>

set -u

flit=${1:?usage: resume_smoke.sh <flit-binary>}
workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

ref="$workdir/ref.tsv"
db="$workdir/resume.tsv"

"$flit" explore MFEM_ex12 --db "$ref" --jobs 4 >/dev/null || {
  echo "FAIL: reference explore did not complete" >&2
  exit 1
}

FLIT_FAULTS=kill:2:0 "$flit" explore MFEM_ex12 --db "$db" --jobs 2 \
  >/dev/null 2>&1
status=$?
if [ "$status" -eq 0 ]; then
  echo "FAIL: the killed run exited 0" >&2
  exit 1
fi
if [ ! -s "$db" ]; then
  echo "FAIL: the killed run left no partial database" >&2
  exit 1
fi
partial=$(wc -l < "$db")
total=$(wc -l < "$ref")
if [ "$partial" -ge "$total" ]; then
  echo "FAIL: the killed run completed ($partial of $total rows)" >&2
  exit 1
fi

"$flit" explore MFEM_ex12 --db "$db" --resume --jobs 8 >/dev/null || {
  echo "FAIL: --resume did not complete" >&2
  exit 1
}

if ! cmp -s "$ref" "$db"; then
  echo "FAIL: resumed database differs from the uninterrupted reference" >&2
  diff "$ref" "$db" | head -20 >&2
  exit 1
fi

echo "PASS: killed at batch 2 ($partial/$total rows), resumed to a" \
     "byte-identical database"
