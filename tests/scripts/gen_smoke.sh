#!/usr/bin/env bash
# CLI smoke test for the generated-workload subsystem (`flit gen` and the
# --gen-* study options).
#
#   1. `flit gen` must print the ground-truth TSV (header plus one row
#      per kernel) and be byte-reproducible for the same seed;
#   2. `flit gen --list` / `--emit` must enumerate the space and render a
#      named kernel, and an unknown kernel name must be rejected;
#   3. a sharded `flit explore GenSuite` must write a study CSV
#      byte-identical to the single-process run of the same space;
#   4. the generated space must serve: a `flit serve` request stream over
#      GenSuite and one per-kernel test completes with per-request state.
#
# Usage: gen_smoke.sh <path-to-flit-binary>

set -u

flit=${1:?usage: gen_smoke.sh <flit-binary>}
workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

gen_args="--gen-seed 7 --gen-count 12"

# --- the describe TSV is labeled, complete, and reproducible -------------
"$flit" gen $gen_args > "$workdir/labels.tsv" || {
  echo "FAIL: flit gen did not print the ground-truth TSV" >&2
  exit 1
}
head -n 1 "$workdir/labels.tsv" | grep -q '^# kernel	' || {
  echo "FAIL: the describe TSV has no header row:" >&2
  head -n 1 "$workdir/labels.tsv" >&2
  exit 1
}
rows=$(grep -c -v '^#' "$workdir/labels.tsv")
if [ "$rows" -ne 12 ]; then
  echo "FAIL: expected 12 label rows, got $rows" >&2
  exit 1
fi
"$flit" gen $gen_args > "$workdir/labels2.tsv"
if ! cmp -s "$workdir/labels.tsv" "$workdir/labels2.tsv"; then
  echo "FAIL: the same seed did not reproduce byte-identical labels" >&2
  exit 1
fi

# --- list/emit enumerate the space; unknown kernels are rejected ---------
"$flit" gen $gen_args --list > "$workdir/names.txt"
names=$(wc -l < "$workdir/names.txt")
if [ "$names" -ne 12 ]; then
  echo "FAIL: --list printed $names names for a 12-kernel space" >&2
  exit 1
fi
first=$(head -n 1 "$workdir/names.txt")
"$flit" gen $gen_args --emit "$first" > "$workdir/emit.txt"
grep -q "$first" "$workdir/emit.txt" || {
  echo "FAIL: --emit $first does not mention the kernel" >&2
  exit 1
}
err=$("$flit" gen $gen_args --emit NoSuchKernel 2>&1 >/dev/null)
status=$?
if [ "$status" -eq 0 ]; then
  echo "FAIL: --emit of an unknown kernel succeeded" >&2
  exit 1
fi
case "$err" in
  *"no kernel named 'NoSuchKernel'"*) ;;
  *)
    echo "FAIL: the unknown-kernel rejection does not name the kernel:" >&2
    echo "$err" >&2
    exit 1
    ;;
esac

# --- sharded explore merges byte-identically to the solo run -------------
"$flit" explore GenSuite $gen_args --csv > "$workdir/solo.csv" \
    2>/dev/null || {
  echo "FAIL: the single-process GenSuite study did not complete" >&2
  exit 1
}
"$flit" explore GenSuite $gen_args --shards 4 --jobs 2 --csv \
    > "$workdir/sharded.csv" 2>/dev/null || {
  echo "FAIL: the sharded GenSuite study did not complete" >&2
  exit 1
}
if ! cmp -s "$workdir/solo.csv" "$workdir/sharded.csv"; then
  echo "FAIL: the sharded study CSV differs from the solo run" >&2
  exit 1
fi

# --- the generated space serves like any registered test -----------------
kernel=$(head -n 1 "$workdir/names.txt")
cat > "$workdir/reqs.jsonl" <<EOF
{"id":"g1","tenant":"alice","test":"GenSuite","limit":8}
{"id":"g2","tenant":"bob","test":"$kernel","limit":8}
EOF
err=$("$flit" serve "$workdir/reqs.jsonl" $gen_args \
      --state-dir "$workdir/state" --shards 2 2>&1 >/dev/null)
status=$?
if [ "$status" -ne 0 ]; then
  echo "FAIL: the generated-space serve run did not complete:" >&2
  echo "$err" >&2
  exit 1
fi
for id in g1 g2; do
  for ext in tsv csv; do
    if [ ! -s "$workdir/state/$id.$ext" ]; then
      echo "FAIL: request $id left no state $ext" >&2
      exit 1
    fi
  done
done

echo "PASS: flit gen reproduces labeled kernels byte-identically, a" \
     "4-shard GenSuite study merges to the solo CSV, and the generated" \
     "space serves with per-request state"
