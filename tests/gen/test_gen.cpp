// The generated-workload subsystem: seeded determinism, ground-truth
// labels that hold by construction (every kernel responds to exactly its
// labeled mechanism), the Table-5-style scored injection harness, and the
// generated space riding the full study stack -- bitwise-identical merges
// across shards x jobs x steal, sharded resume stitching, and the study
// service -- exactly like a hand-written application.

#include <gtest/gtest.h>

#include <cstddef>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/explorer.h"
#include "core/registry.h"
#include "core/report.h"
#include "core/resultsdb.h"
#include "dist/coordinator.h"
#include "fpsem/env.h"
#include "gen/generator.h"
#include "gen/harness.h"
#include "gen/suite.h"
#include "serve/request.h"
#include "serve/service.h"
#include "toolchain/compiler.h"

namespace {

using namespace flit;
using toolchain::Compilation;
using toolchain::OptLevel;

namespace fs = std::filesystem;

// ------------------------------------------------------------ generator

TEST(GenSpec, ValidatesSeedCountAndRecipes) {
  gen::GenSpec ok;
  EXPECT_NO_THROW(ok.validate());
  EXPECT_EQ(ok.effective_recipes(), gen::all_recipes());

  gen::GenSpec zero_seed;
  zero_seed.seed = 0;
  EXPECT_THROW(zero_seed.validate(), std::invalid_argument);

  gen::GenSpec zero_count;
  zero_count.count = 0;
  EXPECT_THROW(zero_count.validate(), std::invalid_argument);

  gen::GenSpec dup;
  dup.recipes = {gen::Recipe::Reduce, gen::Recipe::Reduce};
  EXPECT_THROW(dup.validate(), std::invalid_argument);
}

TEST(GenSpec, RecipeCsvParsingIsStrict) {
  const auto two = gen::recipes_from_csv("fma,subnormal");
  ASSERT_EQ(two.size(), 2u);
  EXPECT_EQ(two[0], gen::Recipe::FmaChain);
  EXPECT_EQ(two[1], gen::Recipe::Subnormal);

  EXPECT_THROW((void)gen::recipes_from_csv("bogus"), std::invalid_argument);
  EXPECT_THROW((void)gen::recipes_from_csv("fma,"), std::invalid_argument);
  EXPECT_THROW((void)gen::recipes_from_csv("fma,fma"),
               std::invalid_argument);
}

TEST(Generator, SameSpecReproducesByteIdenticalKernelsAndLabels) {
  gen::GenSpec spec;
  spec.seed = 42;
  spec.count = 30;
  const auto a = gen::generate(spec);
  const auto b = gen::generate(spec);
  EXPECT_EQ(a, b);  // every field, embedded inputs included
  EXPECT_EQ(gen::describe_tsv(a), gen::describe_tsv(b));

  gen::GenSpec other = spec;
  other.seed = 43;
  const auto c = gen::generate(other);
  ASSERT_EQ(c.size(), a.size());
  EXPECT_NE(a.front().values, c.front().values);
  EXPECT_NE(a.front().name, c.front().name);  // the seed is in the name
}

TEST(Generator, RotatesRecipesAndRespectsTheSubset) {
  gen::GenSpec spec;
  spec.count = 7;
  spec.recipes = {gen::Recipe::Reduce, gen::Recipe::Unsafe};
  const auto ks = gen::generate(spec);
  ASSERT_EQ(ks.size(), 7u);
  for (std::size_t i = 0; i < ks.size(); ++i) {
    EXPECT_EQ(ks[i].recipe, spec.recipes[i % spec.recipes.size()]) << i;
    EXPECT_GE(ks[i].hazard_count(), 1);
    EXPECT_EQ(ks[i].index, i);
  }
}

TEST(Generator, LabelsRoundTripThroughTheTsvAndRejectMalformedLines) {
  gen::GenSpec spec;
  spec.seed = 9;
  spec.count = 12;
  const auto ks = gen::generate(spec);
  for (const auto& k : ks) {
    const gen::GroundTruthLabel label = k.label();
    EXPECT_EQ(gen::GroundTruthLabel::from_tsv_line(label.tsv_line()), label);
    EXPECT_EQ(label.mechanism, gen::mechanism_of(k.recipe));
    EXPECT_EQ(label.hazard_sites, k.hazard_count());
    EXPECT_EQ(label.expected_symbol, k.fn_name());
  }

  const std::string good = ks.front().label().tsv_line();
  EXPECT_THROW((void)gen::GroundTruthLabel::from_tsv_line("a\tb"),
               std::invalid_argument);
  EXPECT_THROW(
      (void)gen::GroundTruthLabel::from_tsv_line(good + "\textra"),
      std::invalid_argument);
  EXPECT_THROW((void)gen::GroundTruthLabel::from_tsv_line(
                   "K\tfma\tnot-a-mechanism\t1\t1\t0\tf.cpp\tK"),
               std::invalid_argument);
  EXPECT_THROW((void)gen::GroundTruthLabel::from_tsv_line(
                   "K\tfma\tfma-contraction\tx\t1\t0\tf.cpp\tK"),
               std::invalid_argument);
}

TEST(Generator, DescribeTsvHasAHeaderAndOneRowPerKernel) {
  gen::GenSpec spec;
  spec.count = 6;
  const auto ks = gen::generate(spec);
  const std::string tsv = gen::describe_tsv(ks);
  std::istringstream in(tsv);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line.rfind("# kernel\t", 0), 0u);
  std::size_t rows = 0;
  while (std::getline(in, line)) {
    EXPECT_EQ(gen::GroundTruthLabel::from_tsv_line(line), ks[rows].label());
    ++rows;
  }
  EXPECT_EQ(rows, ks.size());
}

TEST(Generator, EmitTextRendersTheKernel) {
  gen::GenSpec spec;
  spec.count = 3;
  const auto ks = gen::generate(spec);
  for (const auto& k : ks) {
    const std::string text = gen::emit_text(k);
    EXPECT_NE(text.find(k.name), std::string::npos);
    EXPECT_NE(text.find(gen::to_string(k.recipe)), std::string::npos);
    EXPECT_NE(text.find(k.file), std::string::npos);
  }
}

// ---------------------------------------------------------- registration

TEST(Registration, EnsureIsIdempotentAndConflictsThrow) {
  gen::GenSpec spec;
  spec.count = 8;
  const auto ks = gen::generate(spec);

  fpsem::CodeModel model;
  const auto first = gen::register_kernels(model, ks);
  const std::size_t functions = model.function_count();
  const auto second = gen::register_kernels(model, ks);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].fn, second[i].fn) << i;
    EXPECT_EQ(first[i].helper, second[i].helper) << i;
  }
  EXPECT_EQ(model.function_count(), functions);  // nothing re-added

  // Same name, different record: a conflicting re-registration throws.
  EXPECT_THROW((void)model.ensure({.name = ks.front().fn_name(),
                                   .file = "elsewhere.cpp",
                                   .exported = true}),
               std::invalid_argument);
}

TEST(Registration, HelpersAreInternalWithTheKernelAsHostSymbol) {
  gen::GenSpec spec;
  spec.count = 24;
  const auto ks = gen::generate(spec);
  fpsem::CodeModel model;
  const auto installed = gen::register_kernels(model, ks);

  bool saw_helper = false;
  for (const auto& ik : installed) {
    if (!ik.kernel.has_helper) {
      EXPECT_EQ(ik.helper, fpsem::kInvalidFunction);
      continue;
    }
    saw_helper = true;
    ASSERT_NE(ik.helper, fpsem::kInvalidFunction);
    const auto& info = model.info(ik.helper);
    EXPECT_FALSE(info.exported);
    EXPECT_EQ(info.host_symbol, ik.kernel.fn_name());
    EXPECT_EQ(info.file, ik.kernel.file);
  }
  EXPECT_TRUE(saw_helper) << "no kernel in 24 drew a helper hazard";
}

TEST(Registration, InstallSuiteSkipsKnownKernelsAndGuardsTheSuiteName) {
  gen::GenSpec spec;
  spec.count = 6;
  fpsem::CodeModel model;
  core::TestRegistry registry;
  const auto suite = gen::install_suite(spec, model, &registry);
  ASSERT_EQ(suite.kernels.size(), 6u);
  EXPECT_TRUE(registry.contains(gen::kSuiteTestName));
  for (const auto& ik : suite.kernels) {
    EXPECT_TRUE(registry.contains(ik.kernel.name));
  }

  // Re-installing the same space under the same suite name throws (the
  // name does not pin the spec); a fresh name re-registers the kernels
  // idempotently and only adds the new aggregate.
  EXPECT_THROW((void)gen::install_suite(spec, model, &registry),
               std::invalid_argument);
  EXPECT_NO_THROW(
      (void)gen::install_suite(spec, model, &registry, "GenSuiteB"));
  EXPECT_TRUE(registry.contains("GenSuiteB"));
}

// ----------------------------------------------------- mechanism response

/// The ground-truth contract, asserted over a corpus: under a uniform
/// binding that enables exactly one mechanism, a kernel's output moves iff
/// that mechanism is its label's.
TEST(MechanismResponse, EveryKernelRespondsToExactlyItsLabeledMechanism) {
  gen::GenSpec spec;
  spec.seed = 3;
  spec.count = 60;
  const auto ks = gen::generate(spec);
  fpsem::CodeModel model;
  const auto installed = gen::register_kernels(model, ks);

  const auto eval_under = [&](const gen::InstalledKernel& ik,
                              const fpsem::FpSemantics& sem) {
    fpsem::EvalContext ctx(fpsem::SemanticsMap::uniform(
        model.function_count(), {.sem = sem}));
    return gen::eval_kernel(ik, ctx);
  };

  for (const auto& ik : installed) {
    const double baseline = eval_under(ik, {});
    const gen::Mechanism own = gen::mechanism_of(ik.kernel.recipe);
    for (const gen::Mechanism m :
         {gen::Mechanism::FmaContraction, gen::Mechanism::Reassociation,
          gen::Mechanism::FastLibm, gen::Mechanism::SubnormalFlush,
          gen::Mechanism::UnsafeMath}) {
      fpsem::FpSemantics sem;
      switch (m) {
        case gen::Mechanism::FmaContraction: sem.contract_fma = true; break;
        case gen::Mechanism::Reassociation: sem.reassoc_width = 4; break;
        case gen::Mechanism::FastLibm: sem.fast_libm = true; break;
        case gen::Mechanism::SubnormalFlush:
          sem.flush_subnormals = true;
          break;
        case gen::Mechanism::UnsafeMath: sem.unsafe_math = true; break;
      }
      const bool moved = eval_under(ik, sem) != baseline;
      EXPECT_EQ(moved, m == own)
          << ik.kernel.name << " under " << gen::to_string(m);
    }
  }
}

// ----------------------------------------------------- injection harness

TEST(Harness, CampaignScoresPerfectlyAgainstPlantedGroundTruth) {
  gen::GenSpec spec;
  spec.seed = 7;
  spec.count = 12;  // two kernels per recipe
  const auto ks = gen::generate(spec);

  const Compilation build{toolchain::gcc(), OptLevel::O2, ""};
  const gen::GenCampaignResult res = gen::run_injection_campaign(ks, build);

  // Every reported blame names a planted site (directly or through the
  // helper), and no measurable injection goes unfound.
  EXPECT_EQ(res.total.wrong, 0);
  EXPECT_EQ(res.total.missed, 0);
  EXPECT_DOUBLE_EQ(res.total.precision(), 1.0);
  EXPECT_DOUBLE_EQ(res.total.recall(), 1.0);
  EXPECT_GT(res.total.indirect, 0);  // the helper hazards exercise it

  EXPECT_EQ(res.experiments, res.sites * 4);  // four inject ops per site
  std::size_t hazard_sites = 0;
  for (const auto& k : ks) {
    hazard_sites += static_cast<std::size_t>(k.hazard_count());
  }
  // Hazard statements are a subset of the probed sites (neutral tails and
  // wrapping adds probe too).
  EXPECT_GE(res.sites, hazard_sites);

  ASSERT_EQ(res.per_mechanism.size(), 5u);
  std::size_t pooled = 0;
  for (const auto& pool : res.per_mechanism) {
    EXPECT_GT(pool.kernels, 0u) << gen::to_string(pool.mechanism);
    EXPECT_GT(pool.hazard_sites, 0u) << gen::to_string(pool.mechanism);
    EXPECT_EQ(pool.summary.wrong, 0) << gen::to_string(pool.mechanism);
    EXPECT_EQ(pool.summary.missed, 0) << gen::to_string(pool.mechanism);
    pooled += pool.kernels;
  }
  EXPECT_EQ(pooled, ks.size());
  EXPECT_EQ(res.per_mechanism[0].kernels, 4u);  // fma + branch kernels
}

// ----------------------------------------------- full-stack integration

std::vector<Compilation> small_space() {
  return {
      {toolchain::gcc(), OptLevel::O0, ""},
      {toolchain::gcc(), OptLevel::O2, ""},
      {toolchain::gcc(), OptLevel::O3, ""},
      {toolchain::gcc(), OptLevel::O2, "-mavx2 -mfma"},
      {toolchain::gcc(), OptLevel::O2, "-funsafe-math-optimizations"},
      {toolchain::clang(), OptLevel::O3, "-ffast-math"},
      {toolchain::icpc(), OptLevel::O2, ""},
      {toolchain::icpc(), OptLevel::O2, "-fp-model precise"},
  };
}

std::string file_bytes(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void expect_identical_studies(const core::StudyResult& a,
                              const core::StudyResult& b) {
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  EXPECT_EQ(a.test_name, b.test_name);
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_EQ(a.outcomes[i].comp, b.outcomes[i].comp) << i;
    EXPECT_EQ(a.outcomes[i].variability, b.outcomes[i].variability) << i;
    EXPECT_EQ(a.outcomes[i].cycles, b.outcomes[i].cycles) << i;
    EXPECT_EQ(a.outcomes[i].speedup, b.outcomes[i].speedup) << i;
    EXPECT_EQ(a.outcomes[i].status, b.outcomes[i].status) << i;
    EXPECT_EQ(a.outcomes[i].attempts, b.outcomes[i].attempts) << i;
    EXPECT_EQ(a.outcomes[i].reason, b.outcomes[i].reason) << i;
  }
}

class GenStudyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("flit_gen_" + std::string(::testing::UnitTest::GetInstance()
                                          ->current_test_info()
                                          ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);

    gen::GenSpec spec;
    spec.seed = 5;
    spec.count = 24;
    kernels_ = gen::generate(spec);
    installed_ = gen::register_kernels(model_, kernels_);
    space_ = small_space();
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] gen::GenSuiteTest suite_test() const {
    return gen::GenSuiteTest(gen::kSuiteTestName, installed_);
  }

  fs::path dir_;
  std::vector<gen::GeneratedKernel> kernels_;
  fpsem::CodeModel model_;
  std::vector<gen::InstalledKernel> installed_;
  std::vector<Compilation> space_;
};

TEST_F(GenStudyTest, StudyIsBitwiseIdenticalAcrossShardsJobsAndSteal) {
  const gen::GenSuiteTest test = suite_test();
  core::SpaceExplorer explorer(&model_, toolchain::mfem_baseline(),
                               toolchain::mfem_speed_reference(), 1);
  const core::StudyResult reference = explorer.explore(test, space_);
  const std::string reference_csv = core::study_csv(reference);
  // The generated suite must actually vary across this space, or the
  // identity below would be vacuous.
  EXPECT_GT(reference.variable_count(), 0u);

  for (bool steal : {false, true}) {
    for (int shards : {1, 2, 4}) {
      for (unsigned jobs : {1u, 4u}) {
        dist::ShardOptions opts;
        opts.shards = shards;
        opts.jobs = jobs;
        opts.steal = steal;
        opts.steal_grain = 2;
        dist::ShardCoordinator coord(&model_, toolchain::mfem_baseline(),
                                     toolchain::mfem_speed_reference(),
                                     opts);
        const auto sharded = coord.run(test, space_);
        expect_identical_studies(sharded.study, reference);
        EXPECT_EQ(core::study_csv(sharded.study), reference_csv)
            << (steal ? "steal" : "static") << ", " << shards
            << " shards, " << jobs << " jobs";
      }
    }
  }
}

TEST_F(GenStudyTest, ShardedResumeStitchesTheGeneratedSpaceByteIdentically) {
  const gen::GenSuiteTest test = suite_test();
  const int shards = 2;

  // Reference: an uninterrupted sharded run's converged database.
  const fs::path ref_conv = dir_ / "ref-converged.tsv";
  {
    core::ResultsDb conv(ref_conv);
    dist::ShardOptions opts;
    opts.shards = shards;
    opts.shard_db_dir = dir_ / "ref-shards";
    opts.db = &conv;
    dist::ShardCoordinator coord(&model_, toolchain::mfem_baseline(),
                                 toolchain::mfem_speed_reference(), opts);
    (void)coord.run(test, space_);
  }

  // "Killed" run: each shard checkpointed only the first half of its
  // slice.  Resume must stitch the partial checkpoints and complete the
  // study to the same converged bytes.
  const fs::path part_dir = dir_ / "part-shards";
  fs::create_directories(part_dir);
  const dist::ShardComm comm(shards);
  for (int r = 0; r < shards; ++r) {
    const auto rg = comm.range(r, space_.size());
    const std::size_t half = rg.size() / 2;
    if (half == 0) continue;
    core::ResultsDb shard_db(
        dist::ShardCoordinator::shard_db_path(part_dir, r, shards));
    core::SpaceExplorer explorer(&model_, toolchain::mfem_baseline(),
                                 toolchain::mfem_speed_reference(), 1);
    core::ExploreOptions eo;
    eo.db = &shard_db;
    const std::vector<Compilation> prefix(
        space_.begin() + rg.begin, space_.begin() + rg.begin + half);
    (void)explorer.explore(test, prefix, eo);
  }

  const fs::path conv_path = dir_ / "resumed-converged.tsv";
  {
    core::ResultsDb conv(conv_path);
    dist::ShardOptions opts;
    opts.shards = shards;
    opts.jobs = 4;  // resume at a different jobs count on purpose
    opts.shard_db_dir = part_dir;
    opts.db = &conv;
    dist::ShardCoordinator coord(&model_, toolchain::mfem_baseline(),
                                 toolchain::mfem_speed_reference(), opts);
    const auto resumed = coord.resume(test, space_);
    std::size_t prefilled = 0;
    for (const auto& rep : resumed.shards) prefilled += rep.prefilled;
    EXPECT_GT(prefilled, 0u);
  }
  EXPECT_EQ(file_bytes(conv_path), file_bytes(ref_conv));
}

TEST_F(GenStudyTest, PerKernelTestsRunThroughTheRunnerUnchanged) {
  // A per-kernel test is a zero-input FLiT test; its strict result equals
  // direct evaluation, and a contracting compilation moves exactly the
  // fma-responding kernels.
  for (const auto& ik : installed_) {
    const gen::GenKernelTest test(ik);
    EXPECT_EQ(test.name(), ik.kernel.name);
    EXPECT_EQ(test.getInputsPerRun(), 0u);
    fpsem::EvalContext strict{
        fpsem::SemanticsMap(model_.function_count())};
    const double direct = gen::eval_kernel(ik, strict);
    fpsem::EvalContext strict2{
        fpsem::SemanticsMap(model_.function_count())};
    const auto result = test.run_impl({}, strict2);
    EXPECT_EQ(static_cast<double>(std::get<long double>(result)), direct);
  }
}

// The service resolves tests through the global registry, so the serve
// identity check installs the suite globally (once per process).
const gen::InstalledSuite& global_suite() {
  static const gen::InstalledSuite suite = gen::install_suite(
      [] {
        gen::GenSpec spec;
        spec.seed = 11;
        spec.count = 12;
        return spec;
      }(),
      fpsem::global_code_model(), &core::global_test_registry());
  return suite;
}

TEST(GenServe, ServedStudiesMatchSoloRunsByteForByte) {
  const gen::InstalledSuite& suite = global_suite();
  const auto space = small_space();
  const fs::path dir =
      fs::temp_directory_path() / "flit_gen_serve_identity";
  fs::remove_all(dir);
  fs::create_directories(dir);

  serve::StudyRequest a;
  a.id = "a";
  a.tenant = "alice";
  a.test = gen::kSuiteTestName;
  serve::StudyRequest b;
  b.id = "b";
  b.tenant = "bob";
  b.test = suite.kernels.at(3).kernel.name;  // one single-kernel study
  const std::vector<serve::StudyRequest> requests = {a, b};

  // Solo one-shot references: own explorer, own cold cache, own database.
  std::vector<std::string> solo_db;
  std::vector<std::string> solo_csv;
  for (const auto& req : requests) {
    const auto sub = serve::request_subspace(req, space);
    core::SpaceExplorer explorer(&fpsem::global_code_model(),
                                 toolchain::mfem_baseline(),
                                 toolchain::mfem_speed_reference(), 1);
    const fs::path db_path = dir / ("solo-" + req.id + ".tsv");
    core::ResultsDb db(db_path);
    core::ExploreOptions eo;
    eo.db = &db;
    const auto study = explorer.explore(
        *core::global_test_registry().create(req.test), sub, eo);
    solo_csv.push_back(core::study_csv(study));
    solo_db.push_back(file_bytes(db_path));
  }

  serve::ServeOptions opts;
  opts.state_dir = dir / "state";
  opts.shards = 2;
  opts.jobs = 2;
  serve::StudyService service(&fpsem::global_code_model(),
                              toolchain::mfem_baseline(),
                              toolchain::mfem_speed_reference(), space,
                              std::move(opts));
  const serve::ServeReport report = service.run(requests);

  ASSERT_EQ(report.requests.size(), requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(file_bytes(dir / "state" / (requests[i].id + ".tsv")),
              solo_db[i])
        << requests[i].id;
    EXPECT_EQ(file_bytes(dir / "state" / (requests[i].id + ".csv")),
              solo_csv[i])
        << requests[i].id;
  }
  fs::remove_all(dir);
}

}  // namespace
