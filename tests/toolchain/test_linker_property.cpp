// Property tests of the linker: randomized strong/weak symbol partitions
// must always bind each exported function to exactly the chosen side, and
// internal functions must always follow their host symbol.

#include <random>

#include <gtest/gtest.h>

#include "fpsem/code_model.h"
#include "toolchain/build.h"
#include "toolchain/linker.h"
#include "toolchain/objcopy.h"
#include "toolchain/semantics_rules.h"

namespace {

using namespace flit::toolchain;
using flit::fpsem::CodeModel;
using flit::fpsem::FunctionId;

/// A file with `n_exported` exported functions, each hosting one internal.
CodeModel make_model(int n_exported) {
  CodeModel m;
  for (int i = 0; i < n_exported; ++i) {
    const std::string name = "p::f" + std::to_string(i);
    m.add({.name = name, .file = "p/impl.cpp"});
    m.add({.name = "p::detail" + std::to_string(i),
           .file = "p/impl.cpp",
           .exported = false,
           .host_symbol = name});
  }
  m.add({.name = "q::g", .file = "q/other.cpp"});
  return m;
}

Compilation base() { return {gcc(), OptLevel::O0, ""}; }
Compilation variant() {
  return {gcc(), OptLevel::O2, "-funsafe-math-optimizations"};
}

class LinkerPartitionTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(LinkerPartitionTest, EveryFunctionBindsToItsChosenSide) {
  const unsigned seed = GetParam();
  std::mt19937 rng(seed);
  const int n = 8;
  CodeModel m = make_model(n);
  BuildSystem build(&m);
  Linker linker(&m);

  // Random subset of exported symbols taken from the variant object.
  std::vector<std::string> chosen;
  for (int i = 0; i < n; ++i) {
    if (rng() % 2 == 0) chosen.push_back("p::f" + std::to_string(i));
  }

  const ObjectFile var = objcopy_weaken_complement(
      build.compile("p/impl.cpp", variant(), /*fpic=*/true), chosen);
  const ObjectFile bas = objcopy_weaken(
      build.compile("p/impl.cpp", base(), /*fpic=*/true), chosen);
  const std::vector<ObjectFile> objs{var, bas,
                                     build.compile("q/other.cpp", base())};
  const Executable exe = linker.link(objs, gcc());

  const auto var_sem = derive_semantics(variant());
  for (int i = 0; i < n; ++i) {
    const FunctionId f = *m.find("p::f" + std::to_string(i));
    const FunctionId d = *m.find("p::detail" + std::to_string(i));
    const bool is_chosen =
        std::find(chosen.begin(), chosen.end(),
                  "p::f" + std::to_string(i)) != chosen.end();
    // Note: with fpic, variant semantics may have been stripped for
    // inline candidates -- none here, so the check is exact.
    EXPECT_EQ(exe.map.binding(f).sem == var_sem, is_chosen) << i;
    // The internal detail function follows its host's side.
    EXPECT_EQ(exe.map.binding(d).sem == var_sem, is_chosen) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LinkerPartitionTest,
                         ::testing::Range(0u, 12u));

TEST(LinkerProperty, ResolutionIsLinkOrderIndependentForStrongSymbols) {
  CodeModel m = make_model(4);
  BuildSystem build(&m);
  Linker linker(&m);
  std::vector<ObjectFile> objs{build.compile("p/impl.cpp", variant()),
                               build.compile("q/other.cpp", base())};
  const Executable a = linker.link(objs, gcc());
  std::swap(objs[0], objs[1]);
  const Executable b = linker.link(objs, gcc());
  EXPECT_EQ(a.map, b.map);
}

TEST(LinkerProperty, AllWeakTakesTheFirstDefinitionInLinkOrder) {
  CodeModel m;
  m.add({.name = "w::f", .file = "w/a.cpp"});
  BuildSystem build(&m);
  Linker linker(&m);
  const auto weaken_all = [](ObjectFile o) {
    for (auto& s : o.symbols) s.strong = false;
    return o;
  };
  ObjectFile first = weaken_all(build.compile("w/a.cpp", variant()));
  ObjectFile second = weaken_all(build.compile("w/a.cpp", base()));
  const std::vector<ObjectFile> objs{first, second};
  const Executable exe = linker.link(objs, gcc());
  EXPECT_EQ(exe.map.binding(*m.find("w::f")).sem,
            derive_semantics(variant()));
}

}  // namespace
