// Compilation triples and the study spaces of Sec. 3.1 / Table 1.

#include <set>

#include <gtest/gtest.h>

#include "toolchain/compiler.h"

namespace {

using namespace flit::toolchain;

TEST(Compilation, StringRendering) {
  const Compilation c{gcc(), OptLevel::O2, "-funsafe-math-optimizations"};
  EXPECT_EQ(c.str(), "g++ -O2 -funsafe-math-optimizations");
  const Compilation plain{clang(), OptLevel::O0, ""};
  EXPECT_EQ(plain.str(), "clang++ -O0");
}

TEST(Compilation, EqualityIsStructural) {
  const Compilation a{gcc(), OptLevel::O2, "-mavx"};
  Compilation b = a;
  EXPECT_EQ(a, b);
  b.flag = "";
  EXPECT_NE(a, b);
}

TEST(FlagLists, SizesMatchTheTable1RunCounts) {
  // 19 tests x 4 opt levels x |flags|: 1292 g++, 1368 clang++, 1976 icpc.
  EXPECT_EQ(gcc_flags().size(), 17u);
  EXPECT_EQ(clang_flags().size(), 18u);
  EXPECT_EQ(icpc_flags().size(), 26u);
}

TEST(FlagLists, EachContainsTheEmptyFlag) {
  for (const auto* flags : {&gcc_flags(), &clang_flags(), &icpc_flags()}) {
    EXPECT_NE(std::find(flags->begin(), flags->end(), ""), flags->end());
  }
}

TEST(MfemStudySpace, Has244Compilations) {
  const auto space = mfem_study_space();
  EXPECT_EQ(space.size(), 244u);  // 68 + 72 + 104, as in the paper
}

TEST(MfemStudySpace, AllCompilationsDistinct) {
  const auto space = mfem_study_space();
  std::set<std::string> keys;
  for (const auto& c : space) keys.insert(c.str());
  EXPECT_EQ(keys.size(), space.size());
}

TEST(MfemStudySpace, PerCompilerCounts) {
  const auto space = mfem_study_space();
  std::size_t n_gcc = 0, n_clang = 0, n_icpc = 0;
  for (const auto& c : space) {
    switch (c.compiler.family) {
      case CompilerFamily::GCC: ++n_gcc; break;
      case CompilerFamily::Clang: ++n_clang; break;
      case CompilerFamily::Intel: ++n_icpc; break;
      default: ADD_FAILURE();
    }
  }
  EXPECT_EQ(n_gcc, 68u);
  EXPECT_EQ(n_clang, 72u);
  EXPECT_EQ(n_icpc, 104u);
}

TEST(Baselines, MatchThePaper) {
  EXPECT_EQ(mfem_baseline().str(), "g++ -O0");
  EXPECT_EQ(mfem_speed_reference().str(), "g++ -O2");
  EXPECT_EQ(laghos_trusted_gcc().str(), "g++ -O2");
  EXPECT_EQ(laghos_trusted_xlc().str(), "xlc++ -O2");
  EXPECT_EQ(laghos_variable_xlc().str(), "xlc++ -O3");
  EXPECT_EQ(laghos_strict_xlc().str(), "xlc++ -O3 -qstrict=vectorprecision");
}

TEST(CompilerSpecs, FamiliesAndNames) {
  EXPECT_EQ(gcc().family, CompilerFamily::GCC);
  EXPECT_EQ(clang().family, CompilerFamily::Clang);
  EXPECT_EQ(icpc().family, CompilerFamily::Intel);
  EXPECT_EQ(xlc().family, CompilerFamily::XLC);
  EXPECT_STREQ(to_string(CompilerFamily::Intel), "Intel");
  EXPECT_STREQ(to_string(OptLevel::O3), "-O3");
}

}  // namespace
