// The shared compilation cache: fingerprint collapse of semantically
// equivalent triples, byte-identical bindings on hits, hit/miss
// accounting, and key separation for -fPIC and injected builds.

#include <gtest/gtest.h>

#include "fpsem/code_model.h"
#include "toolchain/build.h"
#include "toolchain/compile_cache.h"
#include "toolchain/compiler.h"
#include "toolchain/semantics_rules.h"

namespace {

using namespace flit::toolchain;
using flit::fpsem::CodeModel;

CodeModel make_model() {
  CodeModel m;
  m.add({.name = "cc::f", .file = "cc/a.cpp"});
  m.add({.name = "cc::g", .file = "cc/a.cpp", .uses_libm = true});
  m.add({.name = "cc::hidden",
         .file = "cc/a.cpp",
         .exported = false,
         .host_symbol = "cc::f"});
  m.add({.name = "cc::h", .file = "cc/b.cpp", .inline_candidate = true});
  return m;
}

/// g++ -O1 with and without the documented-inert -fassociative-math flag:
/// identical derived semantics and cost, different raw triples.
Compilation o1_plain() { return {gcc(), OptLevel::O1, ""}; }
Compilation o1_inert() { return {gcc(), OptLevel::O1, "-fassociative-math"}; }

void expect_same_object(const ObjectFile& a, const ObjectFile& b) {
  EXPECT_EQ(a.source_file, b.source_file);
  EXPECT_EQ(a.fpic, b.fpic);
  EXPECT_EQ(a.injected, b.injected);
  EXPECT_EQ(a.bindings, b.bindings);
  EXPECT_EQ(a.internal_fns, b.internal_fns);
  ASSERT_EQ(a.symbols.size(), b.symbols.size());
  for (std::size_t i = 0; i < a.symbols.size(); ++i) {
    EXPECT_EQ(a.symbols[i].name, b.symbols[i].name);
    EXPECT_EQ(a.symbols[i].fn, b.symbols[i].fn);
    EXPECT_EQ(a.symbols[i].strong, b.symbols[i].strong);
  }
}

TEST(CompilationCache, FingerprintCollapsesSemanticallyEquivalentTriples) {
  EXPECT_EQ(CompilationCache::fingerprint(o1_plain(), false),
            CompilationCache::fingerprint(o1_inert(), false));
  EXPECT_NE(CompilationCache::fingerprint(o1_plain(), false),
            CompilationCache::fingerprint({gcc(), OptLevel::O2, ""}, false));
  // Cost differences separate fingerprints even when semantics agree:
  // -mavx changes bulk_scale only.
  EXPECT_NE(
      CompilationCache::fingerprint({gcc(), OptLevel::O2, ""}, false),
      CompilationCache::fingerprint({gcc(), OptLevel::O2, "-mavx"}, false));
}

TEST(CompilationCache, FpicFingerprintsAreKeyedByTheRawTriple) {
  // The -fPIC inlining-loss predicate hashes the raw compilation string,
  // so equivalent triples must NOT share -fPIC objects.
  EXPECT_NE(CompilationCache::fingerprint(o1_plain(), true),
            CompilationCache::fingerprint(o1_inert(), true));
}

TEST(CompilationCache, HitReturnsTheSameObjectWithTheRequestedTriple) {
  CodeModel m = make_model();
  CompilationCache cache;
  BuildSystem cached(&m, &cache);
  BuildSystem uncached(&m);

  const ObjectFile first = cached.compile("cc/a.cpp", o1_plain());
  const ObjectFile hit = cached.compile("cc/a.cpp", o1_inert());
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);

  // The hit's bindings are byte-identical to a from-scratch compile of the
  // *requested* triple, and the raw triple is restamped (the ABI-hazard
  // predicates hash it).
  expect_same_object(hit, uncached.compile("cc/a.cpp", o1_inert()));
  EXPECT_EQ(hit.comp, o1_inert());
  EXPECT_EQ(first.comp, o1_plain());
}

TEST(CompilationCache, CompileCountsDropAcrossRepeatedBuilds) {
  CodeModel m = make_model();
  CompilationCache cache;
  BuildSystem build(&m, &cache);

  (void)build.compile_all(o1_plain());
  const auto after_first = cache.stats();
  EXPECT_EQ(after_first.misses, m.files().size());
  EXPECT_EQ(after_first.hits, 0u);

  (void)build.compile_all(o1_plain());
  (void)build.compile_all(o1_inert());  // equivalent triple: all hits too
  const auto after_third = cache.stats();
  EXPECT_EQ(after_third.misses, m.files().size());
  EXPECT_EQ(after_third.hits, 2 * m.files().size());
  EXPECT_GT(after_third.hit_rate(), 0.5);
}

TEST(CompilationCache, FpicAndInjectedAreSeparateEntries) {
  CodeModel m = make_model();
  CompilationCache cache;
  BuildSystem build(&m, &cache);

  const auto plain = build.compile("cc/a.cpp", o1_plain());
  const auto fpic = build.compile("cc/a.cpp", o1_plain(), /*fpic=*/true);
  const auto injected = build.compile("cc/a.cpp", o1_plain(), /*fpic=*/false,
                                      /*injected=*/true);
  EXPECT_EQ(cache.stats().misses, 3u);
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_FALSE(plain.fpic);
  EXPECT_TRUE(fpic.fpic);
  EXPECT_TRUE(injected.injected);
  EXPECT_FALSE(plain.injected);
}

TEST(CompilationCache, CachedObjectsEqualUncachedAcrossTheStudySpace) {
  CodeModel m = make_model();
  CompilationCache cache;
  BuildSystem cached(&m, &cache);
  BuildSystem uncached(&m);

  for (const Compilation& c : mfem_study_space()) {
    for (const std::string& f : m.files()) {
      expect_same_object(cached.compile(f, c), uncached.compile(f, c));
      expect_same_object(cached.compile(f, c, /*fpic=*/true),
                         uncached.compile(f, c, /*fpic=*/true));
    }
  }
}

TEST(CompilationCache, StudySpaceHitRateExceedsHalf) {
  // The Table 1 space: 244 triples collapse onto far fewer distinct
  // per-file semantics, so most non-fPIC compiles are hits.
  CodeModel m = make_model();
  CompilationCache cache;
  BuildSystem build(&m, &cache);
  for (const Compilation& c : mfem_study_space()) {
    (void)build.compile_all(c);
  }
  EXPECT_GT(cache.stats().hit_rate(), 0.5);
}

TEST(CacheStats, MergeSumsTalliesAndPreservesTheHitRateInvariant) {
  // Per-shard stats are summed into the distributed engine's aggregate
  // report; the merge must be plain addition on both counters.
  CacheStats a{.hits = 7, .misses = 3};
  const CacheStats b{.hits = 1, .misses = 9};

  const CacheStats sum = a + b;
  EXPECT_EQ(sum.hits, 8u);
  EXPECT_EQ(sum.misses, 12u);
  EXPECT_EQ(sum.lookups(), 20u);
  EXPECT_EQ(sum.hit_rate(), 8.0 / 20.0);

  a += b;
  EXPECT_EQ(a, sum);

  // Identity: merging an idle shard's stats changes nothing.
  const CacheStats before = a;
  a += CacheStats{};
  EXPECT_EQ(a, before);
  EXPECT_EQ(CacheStats{}.hit_rate(), 0.0);  // no lookups, no rate
}

TEST(CacheStats, MergingRealShardCachesMatchesOneSharedCache) {
  // Two caches each serving half the study space tally, in sum, the same
  // lookups as one cache serving all of it (hit counts differ -- each
  // shard re-misses its first equivalent triple -- so only the lookup sum
  // is partition-invariant).
  CodeModel m = make_model();
  const auto space = mfem_study_space();
  const std::size_t half = space.size() / 2;

  CompilationCache whole;
  BuildSystem whole_build(&m, &whole);
  for (const Compilation& c : space) (void)whole_build.compile_all(c);

  CacheStats merged;
  for (std::size_t begin : {std::size_t{0}, half}) {
    CompilationCache shard;
    BuildSystem build(&m, &shard);
    const std::size_t end = begin == 0 ? half : space.size();
    for (std::size_t i = begin; i < end; ++i) {
      (void)build.compile_all(space[i]);
    }
    merged += shard.stats();
  }
  EXPECT_EQ(merged.lookups(), whole.stats().lookups());
  EXPECT_GE(merged.misses, whole.stats().misses);
}

TEST(CacheStats, SnapshotDifferenceAttributesTheActivityInBetween) {
  // The study service snapshots the shared cache around each tenant's
  // batch; later - earlier must be exactly the in-between tallies.
  CodeModel m = make_model();
  CompilationCache cache;
  BuildSystem build(&m, &cache);

  (void)build.compile_all(o1_plain());
  const CacheStats before = cache.stats();
  (void)build.compile_all(o1_plain());
  (void)build.compile_all(o1_inert());
  const CacheStats delta = cache.stats() - before;
  EXPECT_EQ(delta.hits, 2 * m.files().size());
  EXPECT_EQ(delta.misses, 0u);
  EXPECT_EQ(delta.inserted_bytes, 0u);
  EXPECT_EQ(before + delta, cache.stats());
}

TEST(CompilationCache, EvictionCountsPerEntryNotPerClear) {
  // Regression: the eviction counter historically only moved on wholesale
  // clear()s, so any policy that removes entries one group at a time was
  // invisible in the stats.  A budget of 0 evicts each inserted entry
  // immediately -- the counter must track every one.
  CodeModel m = make_model();
  CompilationCache cache;
  cache.set_budget(0);
  BuildSystem build(&m, &cache);

  (void)build.compile_all(o1_plain());
  const CacheStats s = cache.stats();
  EXPECT_EQ(s.misses, m.files().size());
  EXPECT_EQ(s.evictions, m.files().size());  // every insert evicted
  EXPECT_EQ(s.evicted_bytes, s.inserted_bytes);
  EXPECT_EQ(s.resident_bytes(), 0u);
  EXPECT_EQ(cache.resident_entries(), 0u);

  // Re-compiling misses again: nothing was retained.
  (void)build.compile_all(o1_plain());
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 2 * m.files().size());
}

TEST(CompilationCache, UnboundedCacheNeverEvicts) {
  CodeModel m = make_model();
  CompilationCache cache;
  BuildSystem build(&m, &cache);
  for (const Compilation& c : mfem_study_space()) {
    (void)build.compile_all(c);
  }
  EXPECT_EQ(cache.stats().evictions, 0u);
  EXPECT_EQ(cache.stats().evicted_bytes, 0u);
  EXPECT_EQ(cache.resident_bytes(), cache.stats().inserted_bytes);
  EXPECT_EQ(cache.stats().resident_bytes(), cache.resident_bytes());
}

TEST(CompilationCache, BudgetCapsTheResidentFootprint) {
  CodeModel m = make_model();
  CompilationCache unbounded;
  {
    BuildSystem build(&m, &unbounded);
    for (const Compilation& c : mfem_study_space()) {
      (void)build.compile_all(c);
    }
  }
  const std::uint64_t full = unbounded.resident_bytes();
  ASSERT_GT(full, 0u);

  // A budget of half the full footprint: the cache must stay under it
  // after every insertion, evicting LRU fingerprint groups, and the byte
  // ledgers must reconcile (inserted - evicted == resident).
  CompilationCache bounded;
  bounded.set_budget(full / 2);
  BuildSystem build(&m, &bounded);
  for (const Compilation& c : mfem_study_space()) {
    (void)build.compile_all(c);
    EXPECT_LE(bounded.resident_bytes(), full / 2);
  }
  const CacheStats s = bounded.stats();
  EXPECT_GT(s.evictions, 0u);
  EXPECT_EQ(s.inserted_bytes - s.evicted_bytes, bounded.resident_bytes());

  // Shrinking the budget evicts immediately; restoring nullopt stops
  // evicting but does not resurrect anything.
  bounded.set_budget(0);
  EXPECT_EQ(bounded.resident_bytes(), 0u);
  EXPECT_EQ(bounded.resident_entries(), 0u);
  bounded.set_budget(std::nullopt);
  EXPECT_EQ(bounded.resident_entries(), 0u);
}

TEST(CompilationCache, EvictedEntriesRebuildByteIdentical) {
  // The determinism half of the bounded-memory contract: an object
  // rebuilt after its group was evicted is byte-identical to the evicted
  // one, so eviction can change hit rates but never study results.
  CodeModel m = make_model();
  CompilationCache tight;
  tight.set_budget(0);  // worst case: every lookup rebuilds
  BuildSystem bounded_build(&m, &tight);
  BuildSystem uncached(&m);
  for (const Compilation& c : mfem_study_space()) {
    for (const std::string& f : m.files()) {
      expect_same_object(bounded_build.compile(f, c), uncached.compile(f, c));
    }
  }
  EXPECT_EQ(tight.stats().hits, 0u);
}

TEST(CompilationCache, ApproxObjectBytesIsContentDerived) {
  CodeModel m = make_model();
  BuildSystem build(&m);
  const ObjectFile a = build.compile("cc/a.cpp", o1_plain());
  EXPECT_GT(approx_object_bytes(a), 0u);
  // Pure function of the contents: equal objects, equal footprint.
  EXPECT_EQ(approx_object_bytes(a),
            approx_object_bytes(build.compile("cc/a.cpp", o1_plain())));
}

TEST(CompilationCache, ClearResetsEntriesAndCounters) {
  CodeModel m = make_model();
  CompilationCache cache;
  BuildSystem build(&m, &cache);
  (void)build.compile_all(o1_plain());
  (void)build.compile_all(o1_plain());
  cache.clear();
  EXPECT_EQ(cache.stats().lookups(), 0u);
  (void)build.compile_all(o1_plain());
  EXPECT_EQ(cache.stats().misses, m.files().size());
}

}  // namespace
