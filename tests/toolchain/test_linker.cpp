// The simulated linker: strong/weak resolution, duplicate and missing
// symbol errors, internal-function binding through host symbols, link-step
// libm substitution, injected-build tracking, objcopy, and the run-time
// hazard modeling.

#include <gtest/gtest.h>

#include "fpsem/code_model.h"
#include "toolchain/build.h"
#include "toolchain/linker.h"
#include "toolchain/objcopy.h"
#include "toolchain/semantics_rules.h"

namespace {

using namespace flit::toolchain;
using flit::fpsem::CodeModel;
using flit::fpsem::FunctionId;

CodeModel make_model() {
  CodeModel m;
  m.add({.name = "alpha::f", .file = "alpha.cpp"});
  m.add({.name = "alpha::g", .file = "alpha.cpp"});
  m.add({.name = "alpha::hidden",
         .file = "alpha.cpp",
         .exported = false,
         .host_symbol = "alpha::g"});
  m.add({.name = "beta::h", .file = "beta.cpp", .uses_libm = true});
  return m;
}

Compilation base_comp() { return {gcc(), OptLevel::O0, ""}; }
Compilation var_comp() {
  return {gcc(), OptLevel::O2, "-funsafe-math-optimizations"};
}

TEST(Linker, UniformLinkBindsEverythingToTheCompilation) {
  CodeModel m = make_model();
  BuildSystem build(&m);
  Linker linker(&m);
  const auto objs = build.compile_all(var_comp());
  const Executable exe = linker.link(objs, gcc());
  EXPECT_FALSE(exe.crashes);
  const auto expect = derive_semantics(var_comp());
  for (FunctionId id = 0; id < m.function_count(); ++id) {
    EXPECT_EQ(exe.map.binding(id).sem, expect) << m.info(id).name;
  }
}

TEST(Linker, MissingFileIsALinkError) {
  CodeModel m = make_model();
  BuildSystem build(&m);
  Linker linker(&m);
  std::vector<ObjectFile> objs{build.compile("alpha.cpp", base_comp())};
  EXPECT_THROW(
      {
        try {
          (void)linker.link(objs, gcc());
        } catch (const LinkError& e) {
          EXPECT_EQ(e.kind(), LinkError::Kind::MissingFile);
          throw;
        }
      },
      LinkError);
}

TEST(Linker, TwoStrongCopiesOfAFileClash) {
  CodeModel m = make_model();
  BuildSystem build(&m);
  Linker linker(&m);
  std::vector<ObjectFile> objs = build.compile_all(base_comp());
  objs.push_back(build.compile("alpha.cpp", var_comp()));
  EXPECT_THROW(
      {
        try {
          (void)linker.link(objs, gcc());
        } catch (const LinkError& e) {
          EXPECT_EQ(e.kind(), LinkError::Kind::DuplicateStrong);
          throw;
        }
      },
      LinkError);
}

TEST(Linker, StrongBeatsWeak) {
  CodeModel m = make_model();
  BuildSystem build(&m);
  Linker linker(&m);
  const FunctionId f = *m.find("alpha::f");
  const FunctionId g = *m.find("alpha::g");

  // Variable copy keeps alpha::f strong; baseline copy keeps alpha::g.
  ObjectFile var_obj =
      objcopy_weaken_complement(build.compile("alpha.cpp", var_comp()),
                                {"alpha::f"});
  ObjectFile base_obj =
      objcopy_weaken(build.compile("alpha.cpp", base_comp()), {"alpha::f"});
  std::vector<ObjectFile> objs{var_obj, base_obj,
                               build.compile("beta.cpp", base_comp())};
  const Executable exe = linker.link(objs, gcc());
  EXPECT_EQ(exe.map.binding(f).sem, derive_semantics(var_comp()));
  EXPECT_EQ(exe.map.binding(g).sem, derive_semantics(base_comp()));
}

TEST(Linker, InternalFunctionFollowsItsHostSymbol) {
  CodeModel m = make_model();
  BuildSystem build(&m);
  Linker linker(&m);
  const FunctionId hidden = *m.find("alpha::hidden");

  // Host symbol alpha::g taken from the variable copy -> hidden follows.
  ObjectFile var_obj = objcopy_weaken_complement(
      build.compile("alpha.cpp", var_comp()), {"alpha::g"});
  ObjectFile base_obj =
      objcopy_weaken(build.compile("alpha.cpp", base_comp()), {"alpha::g"});
  std::vector<ObjectFile> objs{var_obj, base_obj,
                               build.compile("beta.cpp", base_comp())};
  const Executable exe = linker.link(objs, gcc());
  EXPECT_EQ(exe.map.binding(hidden).sem, derive_semantics(var_comp()));

  // And the complement choice leaves it at baseline.
  ObjectFile var_obj2 = objcopy_weaken_complement(
      build.compile("alpha.cpp", var_comp()), {"alpha::f"});
  ObjectFile base_obj2 =
      objcopy_weaken(build.compile("alpha.cpp", base_comp()), {"alpha::f"});
  std::vector<ObjectFile> objs2{var_obj2, base_obj2,
                                build.compile("beta.cpp", base_comp())};
  const Executable exe2 = linker.link(objs2, gcc());
  EXPECT_EQ(exe2.map.binding(hidden).sem, derive_semantics(base_comp()));
}

TEST(Linker, IntelLinkStepForcesFastLibmOnLibmUsers) {
  CodeModel m = make_model();
  BuildSystem build(&m);
  Linker linker(&m);
  const auto objs = build.compile_all(base_comp());
  const Executable exe = linker.link(objs, icpc());
  EXPECT_TRUE(exe.map.binding(*m.find("beta::h")).sem.fast_libm);
  EXPECT_FALSE(exe.map.binding(*m.find("alpha::f")).sem.fast_libm);
}

TEST(Linker, InjectedObjectsAreTracked) {
  CodeModel m = make_model();
  BuildSystem build(&m);
  Linker linker(&m);
  std::vector<ObjectFile> objs{
      build.compile("alpha.cpp", base_comp(), false, /*injected=*/true),
      build.compile("beta.cpp", base_comp())};
  const Executable exe = linker.link(objs, gcc());
  EXPECT_TRUE(exe.from_injected[*m.find("alpha::f")]);
  EXPECT_TRUE(exe.from_injected[*m.find("alpha::hidden")]);
  EXPECT_FALSE(exe.from_injected[*m.find("beta::h")]);
}

TEST(Objcopy, WeakenAndComplementArePartitions) {
  CodeModel m = make_model();
  BuildSystem build(&m);
  const ObjectFile obj = build.compile("alpha.cpp", base_comp());
  const auto weak_f = objcopy_weaken(obj, {"alpha::f"});
  const auto strong_f = objcopy_weaken_complement(obj, {"alpha::f"});
  for (const SymbolDef& s : weak_f.symbols) {
    EXPECT_EQ(s.strong, s.name != "alpha::f");
  }
  for (const SymbolDef& s : strong_f.symbols) {
    EXPECT_EQ(s.strong, s.name == "alpha::f");
  }
}

TEST(Objcopy, UnknownSymbolNamesAreIgnored) {
  CodeModel m = make_model();
  BuildSystem build(&m);
  const ObjectFile obj = build.compile("alpha.cpp", base_comp());
  const auto same = objcopy_weaken(obj, {"no::such::symbol"});
  for (const SymbolDef& s : same.symbols) EXPECT_TRUE(s.strong);
}

TEST(Hazards, ToxicIntelObjectCrashesMixedBinaries) {
  CodeModel m;
  // Find a file name that the hash marks ABI-toxic under icpc -O2.
  std::string toxic_file;
  const Compilation icomp{icpc(), OptLevel::O2, ""};
  for (int i = 0; i < 2000; ++i) {
    const std::string f = "t" + std::to_string(i) + ".cpp";
    if (abi_toxic(f, icomp)) {
      toxic_file = f;
      break;
    }
  }
  ASSERT_FALSE(toxic_file.empty());
  m.add({.name = "tox::f", .file = toxic_file});
  m.add({.name = "other::g", .file = "other.cpp"});
  BuildSystem build(&m);
  Linker linker(&m);

  std::vector<ObjectFile> mixed{build.compile(toxic_file, icomp),
                                build.compile("other.cpp", base_comp())};
  EXPECT_TRUE(linker.link(mixed, gcc()).crashes);

  // A pure-Intel link of the same objects does not crash.
  std::vector<ObjectFile> pure{build.compile(toxic_file, icomp),
                               build.compile("other.cpp", icomp)};
  EXPECT_FALSE(linker.link(pure, icpc()).crashes);
}

TEST(Hazards, SameCompilationTwoCopiesNeverSymbolCrash) {
  CodeModel m = make_model();
  BuildSystem build(&m);
  Linker linker(&m);
  // Two copies of alpha.cpp under the SAME compilation (injection mode):
  // never a symbol-mix hazard.
  ObjectFile a = objcopy_weaken_complement(
      build.compile("alpha.cpp", base_comp(), false, true), {"alpha::f"});
  ObjectFile b =
      objcopy_weaken(build.compile("alpha.cpp", base_comp()), {"alpha::f"});
  std::vector<ObjectFile> objs{a, b, build.compile("beta.cpp", base_comp())};
  EXPECT_FALSE(linker.link(objs, gcc()).crashes);
}

TEST(BuildSystem, RejectsUnknownFiles) {
  CodeModel m = make_model();
  BuildSystem build(&m);
  EXPECT_THROW((void)build.compile("gamma.cpp", base_comp()),
               std::invalid_argument);
}

TEST(BuildSystem, CompileAllCoversEveryFileOnce) {
  CodeModel m = make_model();
  BuildSystem build(&m);
  const auto objs = build.compile_all(base_comp());
  ASSERT_EQ(objs.size(), 2u);
  EXPECT_EQ(objs[0].source_file, "alpha.cpp");
  EXPECT_EQ(objs[1].source_file, "beta.cpp");
  EXPECT_EQ(objs[0].symbols.size(), 2u);       // exported only
  EXPECT_EQ(objs[0].internal_fns.size(), 1u);  // alpha::hidden
}

}  // namespace
