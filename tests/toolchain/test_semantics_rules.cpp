// The per-compiler semantics derivation rules: each compiler's documented
// floating-point behaviour, the cost model's broad shape, and the
// deterministic hazard predicates.

#include <gtest/gtest.h>

#include "toolchain/semantics_rules.h"

namespace {

using namespace flit::toolchain;
using flit::fpsem::FpSemantics;

Compilation comp(const CompilerSpec& c, OptLevel o, std::string flag = "") {
  return Compilation{c, o, std::move(flag)};
}

// ---- GCC ----------------------------------------------------------------

TEST(GccRules, DefaultIsStrictAtEveryOptLevel) {
  for (OptLevel o : {OptLevel::O0, OptLevel::O1, OptLevel::O2, OptLevel::O3}) {
    EXPECT_TRUE(derive_semantics(comp(gcc(), o)).strict()) << to_string(o);
  }
}

TEST(GccRules, FmaIsaSelectionEnablesContraction) {
  const auto s = derive_semantics(comp(gcc(), OptLevel::O2, "-mavx2 -mfma"));
  EXPECT_TRUE(s.contract_fma);
  EXPECT_EQ(s.reassoc_width, 1);
  // ...but plain AVX does not.
  EXPECT_TRUE(derive_semantics(comp(gcc(), OptLevel::O2, "-mavx")).strict());
}

TEST(GccRules, UnsafeMathReassociatesAndRewrites) {
  const auto s = derive_semantics(
      comp(gcc(), OptLevel::O2, "-funsafe-math-optimizations"));
  EXPECT_TRUE(s.unsafe_math);
  EXPECT_GT(s.reassoc_width, 1);
}

TEST(GccRules, LoneAssociativeMathAndContractOnAreInert) {
  // -fassociative-math requires -fno-signed-zeros/-fno-trapping-math;
  // -ffp-contract=on behaves as off for C++ in this GCC generation.
  EXPECT_TRUE(
      derive_semantics(comp(gcc(), OptLevel::O3, "-fassociative-math"))
          .strict());
  EXPECT_TRUE(derive_semantics(comp(gcc(), OptLevel::O3, "-ffp-contract=on"))
                  .strict());
}

TEST(GccRules, FlagsAreInertAtO0) {
  EXPECT_TRUE(
      derive_semantics(comp(gcc(), OptLevel::O0, "-funsafe-math-optimizations"))
          .strict());
  EXPECT_TRUE(
      derive_semantics(comp(gcc(), OptLevel::O0, "-mavx2 -mfma")).strict());
}

TEST(GccRules, NeutralFlagsStayStrict) {
  for (const char* f :
       {"-ffinite-math-only", "-fno-trapping-math", "-fmerge-all-constants",
        "-fsignaling-nans", "-ffloat-store", "-fcx-fortran-rules"}) {
    EXPECT_TRUE(derive_semantics(comp(gcc(), OptLevel::O3, f)).strict()) << f;
  }
}

// ---- Clang --------------------------------------------------------------

TEST(ClangRules, NoContractionByDefaultEvenWithFmaHardware) {
  EXPECT_TRUE(derive_semantics(comp(clang(), OptLevel::O3)).strict());
  EXPECT_TRUE(
      derive_semantics(comp(clang(), OptLevel::O3, "-mavx2 -mfma")).strict());
  EXPECT_TRUE(derive_semantics(comp(clang(), OptLevel::O3, "-mfma")).strict());
}

TEST(ClangRules, FastMathTurnsEverythingOn) {
  const auto s = derive_semantics(comp(clang(), OptLevel::O2, "-ffast-math"));
  EXPECT_TRUE(s.unsafe_math);
  EXPECT_TRUE(s.contract_fma);
  EXPECT_GT(s.reassoc_width, 1);
}

TEST(ClangRules, ExplicitContractFlagContracts) {
  EXPECT_TRUE(derive_semantics(comp(clang(), OptLevel::O2, "-ffp-contract=fast"))
                  .contract_fma);
}

TEST(ClangRules, IsTheMostConservativeCompiler) {
  // Count value-changing flag/opt combinations; clang must have fewer than
  // both gcc and icpc (Table 1: 1.8% vs 6.0% vs 49.8%).
  const auto count_variable = [](const CompilerSpec& c,
                                 const std::vector<std::string>& flags) {
    int n = 0;
    for (OptLevel o :
         {OptLevel::O0, OptLevel::O1, OptLevel::O2, OptLevel::O3}) {
      for (const auto& f : flags) {
        if (!derive_semantics(comp(c, o, f)).strict()) ++n;
      }
    }
    return n;
  };
  const int n_clang = count_variable(clang(), clang_flags());
  const int n_gcc = count_variable(gcc(), gcc_flags());
  const int n_icpc = count_variable(icpc(), icpc_flags());
  // Intel's default-fast model dwarfs both GNU compilers (Table 1's 49.8%
  // vs 6.0% / 1.8%); gcc and clang are close at the flag-semantics level,
  // with the run-level ordering (clang rarest) emerging from which
  // examples each flag actually perturbs.
  EXPECT_GT(n_icpc, 3 * n_gcc);
  EXPECT_GT(n_icpc, 3 * n_clang);
}

// ---- Intel --------------------------------------------------------------

TEST(IcpcRules, DefaultsToFastModelAtO1AndAbove) {
  const auto s = derive_semantics(comp(icpc(), OptLevel::O2));
  EXPECT_TRUE(s.contract_fma);
  EXPECT_GT(s.reassoc_width, 1);
  // But nothing runs at -O0.
  EXPECT_TRUE(derive_semantics(comp(icpc(), OptLevel::O0)).strict());
}

TEST(IcpcRules, PreciseModelsRestoreStrictness) {
  for (const char* f :
       {"-fp-model precise", "-fp-model strict", "-fp-model source",
        "-mieee-fp"}) {
    EXPECT_TRUE(derive_semantics(comp(icpc(), OptLevel::O3, f)).strict()) << f;
  }
}

TEST(IcpcRules, Fast2IsTheMostAggressive) {
  const auto s =
      derive_semantics(comp(icpc(), OptLevel::O2, "-fp-model fast=2"));
  EXPECT_TRUE(s.unsafe_math);
  EXPECT_TRUE(s.contract_fma);
  EXPECT_TRUE(s.flush_subnormals);
  EXPECT_TRUE(s.fast_libm);
  EXPECT_GE(s.reassoc_width, 4);
}

TEST(IcpcRules, WidePrecisionModelsUseExtendedIntermediates) {
  EXPECT_TRUE(derive_semantics(comp(icpc(), OptLevel::O2, "-fp-model double"))
                  .extended_precision);
  EXPECT_TRUE(
      derive_semantics(comp(icpc(), OptLevel::O2, "-fp-model extended"))
          .extended_precision);
}

TEST(IcpcRules, LinkStepSubstitutesFastLibm) {
  EXPECT_TRUE(link_step_fast_libm(icpc()));
  EXPECT_FALSE(link_step_fast_libm(gcc()));
  EXPECT_FALSE(link_step_fast_libm(clang()));
  EXPECT_FALSE(link_step_fast_libm(xlc()));
}

// ---- XLC ----------------------------------------------------------------

TEST(XlcRules, O2FusesOnly) {
  const auto s = derive_semantics(comp(xlc(), OptLevel::O2));
  EXPECT_TRUE(s.contract_fma);
  EXPECT_FALSE(s.unsafe_math);
  EXPECT_FALSE(s.exploits_ub);
}

TEST(XlcRules, O3IsValueUnsafeAndUbAggressive) {
  const auto s = derive_semantics(comp(xlc(), OptLevel::O3));
  EXPECT_TRUE(s.unsafe_math);
  EXPECT_TRUE(s.exploits_ub);
  EXPECT_GT(s.reassoc_width, 1);
}

TEST(XlcRules, StrictVectorPrecisionTamesO3) {
  const auto s = derive_semantics(
      comp(xlc(), OptLevel::O3, "-qstrict=vectorprecision"));
  EXPECT_TRUE(s.contract_fma);
  EXPECT_FALSE(s.unsafe_math);
  EXPECT_FALSE(s.exploits_ub);
  EXPECT_EQ(s.reassoc_width, 1);
}

TEST(XlcRules, O3IsMuchFasterThanO2) {
  // The Laghos motivation: 2.42x speedup from -O2 to -O3.
  const auto o2 = derive_cost(comp(xlc(), OptLevel::O2));
  const auto o3 = derive_cost(comp(xlc(), OptLevel::O3));
  EXPECT_LT(o3.time_scale, o2.time_scale / 1.5);
  EXPECT_GT(o3.bulk_scale, o2.bulk_scale);
}

// ---- cost model shape ----------------------------------------------------

TEST(CostRules, O0IsMuchSlowerEverywhere) {
  for (const CompilerSpec* c : {&gcc(), &clang(), &icpc(), &xlc()}) {
    const auto k0 = derive_cost(comp(*c, OptLevel::O0));
    const auto k2 = derive_cost(comp(*c, OptLevel::O2));
    EXPECT_GT(k0.time_scale, 2.0 * k2.time_scale) << c->name;
  }
}

TEST(CostRules, VectorIsaFlagsSpeedUpBulkWork) {
  const auto base = derive_cost(comp(gcc(), OptLevel::O2));
  const auto avx = derive_cost(comp(gcc(), OptLevel::O2, "-mavx"));
  EXPECT_GT(avx.bulk_scale, base.bulk_scale);
}

// ---- per-function binding -------------------------------------------------

TEST(Binding, CompileTimeFastLibmOnlyTouchesLibmUsers) {
  const Compilation c = comp(icpc(), OptLevel::O2, "-fimf-precision=low");
  flit::fpsem::FunctionInfo plain{.name = "f", .file = "x.cpp"};
  flit::fpsem::FunctionInfo libm{.name = "g", .file = "x.cpp",
                                 .uses_libm = true};
  EXPECT_FALSE(derive_binding(c, plain, false).sem.fast_libm);
  EXPECT_TRUE(derive_binding(c, libm, false).sem.fast_libm);
}

TEST(Binding, FpicCostsALittle) {
  const Compilation c = comp(gcc(), OptLevel::O2);
  flit::fpsem::FunctionInfo f{.name = "f", .file = "x.cpp"};
  EXPECT_GT(derive_binding(c, f, true).cost.time_scale,
            derive_binding(c, f, false).cost.time_scale);
}

TEST(Binding, FpicCanRemoveInliningDependentVariability) {
  // Scan inline candidates until we find one whose variability the hash
  // says is inlining-borne; its -fPIC binding must revert to strict.
  const Compilation c = comp(gcc(), OptLevel::O2, "-mavx2 -mfma");
  bool found_vanishing = false, found_surviving = false;
  for (int i = 0; i < 64; ++i) {
    flit::fpsem::FunctionInfo f{.name = "cand" + std::to_string(i),
                                .file = "x.cpp",
                                .inline_candidate = true};
    const auto b = derive_binding(c, f, true);
    (b.sem.strict() ? found_vanishing : found_surviving) = true;
  }
  EXPECT_TRUE(found_vanishing);
  EXPECT_TRUE(found_surviving);
}

// ---- hazard predicates -----------------------------------------------------

TEST(Hazards, AbiToxicityOnlyForIntelAndDeterministic) {
  EXPECT_FALSE(abi_toxic("a.cpp", comp(gcc(), OptLevel::O2)));
  EXPECT_FALSE(abi_toxic("a.cpp", comp(clang(), OptLevel::O3)));
  int toxic = 0;
  for (int i = 0; i < 1000; ++i) {
    const std::string file = "file" + std::to_string(i) + ".cpp";
    const bool t1 = abi_toxic(file, comp(icpc(), OptLevel::O2));
    const bool t2 = abi_toxic(file, comp(icpc(), OptLevel::O2));
    EXPECT_EQ(t1, t2);
    toxic += t1;
  }
  EXPECT_GT(toxic, 0);
  EXPECT_LT(toxic, 100);  // a few percent, not an epidemic
}

TEST(Hazards, SymbolMixToxicityIsSymmetricAndFamilyDependent) {
  const Compilation base = comp(gcc(), OptLevel::O0);
  const Compilation var = comp(gcc(), OptLevel::O3, "-mavx2 -mfma");
  int gcc_toxic = 0, clang_toxic = 0;
  for (int i = 0; i < 500; ++i) {
    const std::string file = "f" + std::to_string(i) + ".cpp";
    EXPECT_EQ(symbol_mix_toxic(file, base, var),
              symbol_mix_toxic(file, var, base));
    gcc_toxic += symbol_mix_toxic(file, base, var);
    clang_toxic += symbol_mix_toxic(
        file, base, comp(clang(), OptLevel::O3, "-ffast-math"));
  }
  EXPECT_GT(gcc_toxic, 100);       // ~34%
  EXPECT_EQ(clang_toxic, 0);       // clang mixes cleanly (24/24 in Table 2)
}

TEST(Hazards, StableHashIsStable) {
  EXPECT_EQ(stable_hash("abc"), stable_hash("abc"));
  EXPECT_NE(stable_hash("abc"), stable_hash("abd"));
}

}  // namespace
