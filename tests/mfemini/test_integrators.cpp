// Element integrators and global assembly against known closed forms.

#include <gtest/gtest.h>

#include "mfemini/forms.h"
#include "mfemini/integrators.h"

namespace {

using namespace flit;
using linalg::DenseMatrix;
using linalg::Vector;
using mfemini::ConstantCoefficient;
using mfemini::Mesh;
using mfemini::QuadratureRule;

fpsem::EvalContext ctx() { return fpsem::strict_context(); }

TEST(Integrators, Diffusion1DStiffnessIsOneOverH) {
  auto c = ctx();
  const Mesh m = Mesh::interval(4);  // h = 0.25
  const ConstantCoefficient one(1.0);
  DenseMatrix k;
  mfemini::diffusion_element_matrix(c, m, 0, one, QuadratureRule::gauss(2),
                                    k);
  EXPECT_NEAR(k(0, 0), 4.0, 1e-12);
  EXPECT_NEAR(k(0, 1), -4.0, 1e-12);
  EXPECT_NEAR(k(1, 0), -4.0, 1e-12);
  EXPECT_NEAR(k(1, 1), 4.0, 1e-12);
}

TEST(Integrators, Mass1DIsHOverSix) {
  auto c = ctx();
  const Mesh m = Mesh::interval(2);  // h = 0.5
  const ConstantCoefficient one(1.0);
  DenseMatrix mm;
  mfemini::mass_element_matrix(c, m, 0, one, QuadratureRule::gauss(2), mm);
  EXPECT_NEAR(mm(0, 0), 0.5 / 3.0, 1e-12);
  EXPECT_NEAR(mm(0, 1), 0.5 / 6.0, 1e-12);
  EXPECT_NEAR(mm(1, 1), 0.5 / 3.0, 1e-12);
}

TEST(Integrators, Convection1DRowSumsAreZero) {
  auto c = ctx();
  const Mesh m = Mesh::interval(4);
  DenseMatrix cv;
  mfemini::convection_element_matrix(c, m, 0, 2.0, QuadratureRule::gauss(2),
                                     cv);
  // Each row integrates v * N_a * d(sum N)/dx = 0.
  EXPECT_NEAR(cv(0, 0) + cv(0, 1), 0.0, 1e-14);
  EXPECT_NEAR(cv(1, 0) + cv(1, 1), 0.0, 1e-14);
  // And the total integral of N_a dN_b/dx over the element: +-v/2.
  EXPECT_NEAR(cv(0, 1), 1.0, 1e-12);
}

TEST(Integrators, Diffusion2DElementMatrixIsSymmetricSingular) {
  auto c = ctx();
  const Mesh m = Mesh::quad_grid(2, 2);
  const ConstantCoefficient one(1.0);
  DenseMatrix k;
  mfemini::diffusion_element_matrix(c, m, 0, one, QuadratureRule::gauss(2),
                                    k);
  for (std::size_t i = 0; i < 4; ++i) {
    double row = 0.0;
    for (std::size_t j = 0; j < 4; ++j) {
      EXPECT_NEAR(k(i, j), k(j, i), 1e-13);
      row += k(i, j);
    }
    EXPECT_NEAR(row, 0.0, 1e-13);  // constants are in the null space
  }
  EXPECT_GT(k(0, 0), 0.0);
}

TEST(Integrators, Mass2DTotalIsElementArea) {
  auto c = ctx();
  const Mesh m = Mesh::quad_grid(2, 2);
  const ConstantCoefficient one(1.0);
  DenseMatrix mm;
  mfemini::mass_element_matrix(c, m, 0, one, QuadratureRule::gauss(2), mm);
  double total = 0.0;
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) total += mm(i, j);
  }
  EXPECT_NEAR(total, 0.25, 1e-13);
}

TEST(Assembly, GlobalStiffnessRowSumsVanish) {
  auto c = ctx();
  const Mesh m = Mesh::interval(8);
  const ConstantCoefficient one(1.0);
  const auto& rule = QuadratureRule::gauss(2);
  auto a = mfemini::assemble_bilinear(
      c, m,
      [&](fpsem::EvalContext& cc, const Mesh& mm, std::size_t e,
          DenseMatrix& out) {
        mfemini::diffusion_element_matrix(cc, mm, e, one, rule, out);
      });
  Vector ones(m.num_nodes(), 1.0), y;
  linalg::mult(c, a, ones, y);
  for (std::size_t i = 0; i < y.size(); ++i) EXPECT_NEAR(y[i], 0.0, 1e-12);
}

TEST(Assembly, EliminateEssentialBcSetsIdentityRows) {
  auto c = ctx();
  const Mesh m = Mesh::interval(6);
  const ConstantCoefficient one(1.0);
  const auto& rule = QuadratureRule::gauss(2);
  auto a = mfemini::assemble_bilinear(
      c, m,
      [&](fpsem::EvalContext& cc, const Mesh& mm, std::size_t e,
          DenseMatrix& out) {
        mfemini::diffusion_element_matrix(cc, mm, e, one, rule, out);
      });
  Vector rhs(m.num_nodes(), 1.0);
  mfemini::eliminate_essential_bc(c, m, a, rhs, 2.5);
  EXPECT_EQ(rhs[0], 2.5);
  EXPECT_EQ(rhs[m.num_nodes() - 1], 2.5);
  // Boundary row is now the identity row.
  Vector probe(m.num_nodes(), 0.0), y;
  probe[0] = 1.0;
  linalg::mult(c, a, probe, y);
  EXPECT_EQ(y[0], 1.0);
  for (std::size_t i = 1; i < y.size(); ++i) EXPECT_EQ(y[i], 0.0);
}

TEST(Assembly, DomainLfOfConstantSumsToVolume) {
  auto c = ctx();
  const Mesh m = Mesh::interval(8);
  const ConstantCoefficient one(1.0);
  const Vector b =
      mfemini::assemble_domain_lf(c, m, one, QuadratureRule::gauss(2));
  EXPECT_NEAR(linalg::sum(c, b), 1.0, 1e-13);
}

TEST(Assembly, DomainLf2DSumsToVolume) {
  auto c = ctx();
  const Mesh m = Mesh::quad_grid(3, 3);
  const ConstantCoefficient one(1.0);
  const Vector b =
      mfemini::assemble_domain_lf(c, m, one, QuadratureRule::gauss(2));
  EXPECT_NEAR(linalg::sum(c, b), 1.0, 1e-13);
}

}  // namespace
