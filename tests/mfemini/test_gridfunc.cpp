// Grid functions: projection, error computation, integration, recovery.

#include <gtest/gtest.h>

#include "mfemini/gridfunc.h"

namespace {

using namespace flit;
using linalg::Vector;
using mfemini::GridFunction;
using mfemini::Mesh;
using mfemini::QuadratureRule;

fpsem::EvalContext ctx() { return fpsem::strict_context(); }

TEST(GridFunction, ProjectionIsNodalInterpolation) {
  auto c = ctx();
  const Mesh m = Mesh::interval(4);
  const mfemini::PolyCoefficient f(1.0, 2.0, 0.0, 0.0);  // 1 + 2x
  GridFunction gf(&m);
  mfemini::project_coefficient(c, f, gf);
  for (std::size_t i = 0; i < m.num_nodes(); ++i) {
    EXPECT_NEAR(gf[i], 1.0 + 2.0 * m.x(i), 1e-15);
  }
}

TEST(GridFunction, L2ErrorOfExactlyRepresentedFieldIsZero) {
  auto c = ctx();
  const Mesh m = Mesh::interval(8);
  const mfemini::PolyCoefficient f(0.5, 3.0, 0.0, 0.0);  // linear: exact
  GridFunction gf(&m);
  mfemini::project_coefficient(c, f, gf);
  EXPECT_NEAR(
      mfemini::compute_l2_error(c, gf, f, QuadratureRule::gauss(3)), 0.0,
      1e-13);
}

TEST(GridFunction, L2ErrorDetectsMismatch) {
  auto c = ctx();
  const Mesh m = Mesh::interval(8);
  const mfemini::ConstantCoefficient zero(0.0);
  const mfemini::ConstantCoefficient one(1.0);
  GridFunction gf(&m);
  mfemini::project_coefficient(c, one, gf);
  EXPECT_NEAR(
      mfemini::compute_l2_error(c, gf, zero, QuadratureRule::gauss(2)), 1.0,
      1e-13);
}

TEST(GridFunction, IntegrateConstantGivesVolume) {
  auto c = ctx();
  const Mesh m = Mesh::quad_grid(3, 3);
  const mfemini::ConstantCoefficient two(2.0);
  GridFunction gf(&m);
  mfemini::project_coefficient(c, two, gf);
  EXPECT_NEAR(mfemini::integrate_gf(c, gf, QuadratureRule::gauss(2)), 2.0,
              1e-13);
}

TEST(GridFunction, NodalNormMatchesVectorNorm) {
  auto c = ctx();
  const Mesh m = Mesh::interval(3);
  GridFunction gf(&m);
  gf[0] = 3.0;
  gf[1] = 4.0;
  EXPECT_EQ(mfemini::nodal_norm(c, gf), 5.0);
}

TEST(GridFunction, GradientRecoveryOfLinearIsExact) {
  auto c = ctx();
  const Mesh m = Mesh::interval(10);
  const mfemini::PolyCoefficient f(2.0, 5.0, 0.0, 0.0);  // slope 5
  GridFunction gf(&m);
  mfemini::project_coefficient(c, f, gf);
  Vector grad;
  mfemini::recover_gradient_1d(c, gf, grad);
  for (std::size_t i = 0; i < grad.size(); ++i) {
    EXPECT_NEAR(grad[i], 5.0, 1e-12);
  }
}

TEST(Coefficients, TranscendentalOnesAreFastLibmSensitive) {
  const auto eval_all = [&](fpsem::FpSemantics sem) {
    auto c = fpsem::uniform_context(fpsem::FnBinding{sem, {}});
    const mfemini::SinCoefficient s(1.0, 2.0, 1.0);
    const mfemini::ExpCoefficient e(3.0, 0.25, 0.25);
    const mfemini::PowCoefficient p(1.7);
    return std::tuple{s.eval(c, 0.3, 0.6), e.eval(c, 0.3, 0.6),
                      p.eval(c, 0.3, 0.6)};
  };
  fpsem::FpSemantics fast;
  fast.fast_libm = true;
  EXPECT_NE(eval_all({}), eval_all(fast));
}

TEST(Coefficients, PolyIsLibmFree) {
  // Fast libm must not change a polynomial coefficient.
  const auto eval = [&](fpsem::FpSemantics sem) {
    auto c = fpsem::uniform_context(fpsem::FnBinding{sem, {}});
    const mfemini::PolyCoefficient p(1.0, 2.0, 3.0, 4.0);
    return p.eval(c, 0.3, 0.6);
  };
  fpsem::FpSemantics fast;
  fast.fast_libm = true;
  EXPECT_EQ(eval({}), eval(fast));
}

}  // namespace
