// Iterative solvers: convergence, stopping behaviour and transfer ops.

#include <gtest/gtest.h>

#include "mfemini/solvers.h"

namespace {

using namespace flit;
using linalg::SparseMatrix;
using linalg::Vector;

fpsem::EvalContext ctx() { return fpsem::strict_context(); }

SparseMatrix spd(std::size_t n) {
  SparseMatrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    a.add(i, i, 4.0);
    if (i + 1 < n) {
      a.add(i, i + 1, -1.0);
      a.add(i + 1, i, -1.0);
    }
  }
  a.finalize();
  return a;
}

TEST(CG, SolvesSpdSystem) {
  auto c = ctx();
  const SparseMatrix a = spd(20);
  Vector x_true(20);
  for (std::size_t i = 0; i < 20; ++i) x_true[i] = 0.3 * (i + 1);
  Vector b;
  linalg::mult(c, a, x_true, b);
  Vector x(20, 0.0);
  const auto stats =
      mfemini::cg_solve(c, mfemini::sparse_operator(a), b, x, 1e-12, 100);
  EXPECT_TRUE(stats.converged);
  for (std::size_t i = 0; i < 20; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-9);
}

TEST(CG, ZeroRhsConvergesImmediately) {
  auto c = ctx();
  const SparseMatrix a = spd(8);
  Vector b(8, 0.0), x(8, 0.0);
  const auto stats =
      mfemini::cg_solve(c, mfemini::sparse_operator(a), b, x, 1e-12, 100);
  EXPECT_TRUE(stats.converged);
  EXPECT_EQ(stats.iterations, 0);
}

TEST(CG, RespectsMaxIterations) {
  auto c = ctx();
  const SparseMatrix a = spd(30);
  Vector b(30, 1.0), x(30, 0.0);
  const auto stats =
      mfemini::cg_solve(c, mfemini::sparse_operator(a), b, x, 1e-30, 3);
  EXPECT_FALSE(stats.converged);
  EXPECT_EQ(stats.iterations, 3);
}

TEST(CG, SizeMismatchRejected) {
  auto c = ctx();
  const SparseMatrix a = spd(4);
  Vector b(4, 1.0), x(5, 0.0);
  EXPECT_THROW((void)mfemini::cg_solve(c, mfemini::sparse_operator(a), b, x,
                                       1e-10, 10),
               std::invalid_argument);
}

TEST(SLI, GaussSeidelConverges) {
  auto c = ctx();
  const SparseMatrix a = spd(16);
  Vector b(16, 1.0), x(16, 0.0);
  const auto stats = mfemini::sli_gauss_seidel(c, a, b, x, 1e-10, 200);
  EXPECT_TRUE(stats.converged);
  EXPECT_LT(stats.final_residual, 1e-9);
}

TEST(Jacobi, ApplyDividesByDiagonal) {
  auto c = ctx();
  Vector d{2.0, 4.0}, r{1.0, 1.0}, z;
  mfemini::jacobi_apply(c, d, r, z);
  EXPECT_EQ(z, (Vector{0.5, 0.25}));
}

TEST(Transfer, RestrictProlongAreConsistentOnLinears) {
  auto c = ctx();
  Vector fine(9);
  for (std::size_t i = 0; i < 9; ++i) fine[i] = static_cast<double>(i);
  Vector coarse;
  mfemini::restrict_1d(c, fine, coarse);
  ASSERT_EQ(coarse.size(), 5u);
  // Full weighting preserves linear data at interior points.
  for (std::size_t i = 1; i + 1 < 5; ++i) {
    EXPECT_NEAR(coarse[i], 2.0 * static_cast<double>(i), 1e-14);
  }
  Vector back;
  mfemini::prolong_1d(c, coarse, back);
  ASSERT_EQ(back.size(), 9u);
  for (std::size_t i = 0; i < 9; ++i) {
    EXPECT_NEAR(back[i], fine[i], 1e-14);
  }
}

TEST(Transfer, RestrictRequiresOddSize) {
  auto c = ctx();
  Vector fine(8), coarse;
  EXPECT_THROW(mfemini::restrict_1d(c, fine, coarse), std::invalid_argument);
}

TEST(CG, IterationPathIsSemanticsSensitiveOnIllConditioned) {
  // The example 8 mechanism: an ill-conditioned CG takes different paths
  // under FMA contraction.
  const auto run = [&](fpsem::FpSemantics sem) {
    auto c = fpsem::uniform_context(fpsem::FnBinding{sem, {}});
    SparseMatrix a(12, 12);
    for (std::size_t i = 0; i < 12; ++i) {
      for (std::size_t j = 0; j < 12; ++j) {
        a.add(i, j, 1.0 / static_cast<double>(i + j + 1));
      }
    }
    a.finalize();
    Vector b(12, 1.0), x(12, 0.0);
    (void)mfemini::cg_solve(c, mfemini::sparse_operator(a), b, x, 1e-12,
                            400);
    return x;
  };
  fpsem::FpSemantics fma_sem;
  fma_sem.contract_fma = true;
  EXPECT_NE(run({}), run(fma_sem));
}

TEST(PCG, SolvesSpdSystemFasterThanCgOnIllScaled) {
  auto c = ctx();
  // Badly row/column-scaled SPD system A = D T D with smoothly graded D:
  // Jacobi preconditioning restores the well-conditioned T.
  SparseMatrix a(16, 16);
  const auto scale_of = [](std::size_t i) {
    return std::pow(10.0, static_cast<double>(i) / 5.0);
  };
  for (std::size_t i = 0; i < 16; ++i) {
    a.add(i, i, 4.0 * scale_of(i) * scale_of(i));
    if (i + 1 < 16) {
      a.add(i, i + 1, -1.0 * scale_of(i) * scale_of(i + 1));
      a.add(i + 1, i, -1.0 * scale_of(i) * scale_of(i + 1));
    }
  }
  a.finalize();
  Vector diag;
  linalg::diag(c, a, diag);
  Vector b(16, 1.0);

  Vector x1(16, 0.0), x2(16, 0.0);
  const auto cg = mfemini::cg_solve(c, mfemini::sparse_operator(a), b, x1,
                                    1e-12, 500);
  const auto pcg = mfemini::pcg_solve(c, mfemini::sparse_operator(a), diag,
                                      b, x2, 1e-12, 500);
  EXPECT_TRUE(cg.converged);
  EXPECT_TRUE(pcg.converged);
  EXPECT_LT(pcg.iterations, cg.iterations);
  for (std::size_t i = 0; i < 16; ++i) EXPECT_NEAR(x1[i], x2[i], 1e-8);
}

TEST(PCG, SizeMismatchRejected) {
  auto c = ctx();
  const SparseMatrix a = spd(4);
  Vector d(3, 1.0), b(4, 1.0), x(4, 0.0);
  EXPECT_THROW((void)mfemini::pcg_solve(c, mfemini::sparse_operator(a), d,
                                        b, x, 1e-10, 10),
               std::invalid_argument);
}

TEST(GMRES, SolvesNonsymmetricSystem) {
  auto c = ctx();
  // Convection-diffusion-like nonsymmetric tridiagonal system.
  SparseMatrix a(20, 20);
  for (std::size_t i = 0; i < 20; ++i) {
    a.add(i, i, 4.0);
    if (i + 1 < 20) {
      a.add(i, i + 1, -2.5);  // upwind asymmetry
      a.add(i + 1, i, -0.5);
    }
  }
  a.finalize();
  Vector x_true(20);
  for (std::size_t i = 0; i < 20; ++i) x_true[i] = 1.0 + 0.1 * i;
  Vector b;
  linalg::mult(c, a, x_true, b);
  Vector x(20, 0.0);
  const auto stats = mfemini::gmres_solve(c, mfemini::sparse_operator(a), b,
                                          x, 1e-12, 10, 20);
  EXPECT_TRUE(stats.converged);
  for (std::size_t i = 0; i < 20; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-8);
}

TEST(GMRES, FullKrylovSolvesInOneOuterIteration) {
  auto c = ctx();
  const SparseMatrix a = spd(8);
  Vector b(8, 1.0), x(8, 0.0);
  const auto stats = mfemini::gmres_solve(c, mfemini::sparse_operator(a), b,
                                          x, 1e-12, 8, 1);
  EXPECT_TRUE(stats.converged);
  EXPECT_LE(stats.iterations, 8);
}

TEST(GMRES, ZeroRhsConvergesImmediately) {
  auto c = ctx();
  const SparseMatrix a = spd(6);
  Vector b(6, 0.0), x(6, 0.0);
  const auto stats = mfemini::gmres_solve(c, mfemini::sparse_operator(a), b,
                                          x, 1e-12, 6, 3);
  EXPECT_TRUE(stats.converged);
  EXPECT_EQ(stats.iterations, 0);
}

TEST(GMRES, RespectsRestartBudget) {
  auto c = ctx();
  const SparseMatrix a = spd(30);
  Vector b(30, 1.0), x(30, 0.0);
  const auto stats = mfemini::gmres_solve(c, mfemini::sparse_operator(a), b,
                                          x, 1e-30, 5, 2);
  EXPECT_FALSE(stats.converged);
  EXPECT_LE(stats.iterations, 10);
}

TEST(GMRES, IsSemanticsSensitive) {
  const auto run = [&](fpsem::FpSemantics sem) {
    auto c = fpsem::uniform_context(fpsem::FnBinding{sem, {}});
    SparseMatrix a(24, 24);
    for (std::size_t i = 0; i < 24; ++i) {
      a.add(i, i, 3.0 + 1.0 / (i + 1.0));
      if (i + 1 < 24) {
        a.add(i, i + 1, -1.3);
        a.add(i + 1, i, -0.4);
      }
    }
    a.finalize();
    Vector b(24, 1.0), x(24, 0.0);
    (void)mfemini::gmres_solve(c, mfemini::sparse_operator(a), b, x, 0.0,
                               6, 3);
    return x;
  };
  fpsem::FpSemantics sem;
  sem.contract_fma = true;
  sem.reassoc_width = 4;
  EXPECT_NE(run({}), run(sem));
}

}  // namespace
