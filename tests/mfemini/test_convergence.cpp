// Finite element convergence properties: refining the mesh reduces the
// L2 error of projection and of the Poisson solve at the expected rates.
// These validate that the mini-MFEM substrate computes real FE answers,
// not just "plausible numbers" -- a prerequisite for the variability
// study to be meaningful.

#include <cmath>

#include <gtest/gtest.h>

#include "mfemini/coefficients.h"
#include "mfemini/forms.h"
#include "mfemini/gridfunc.h"
#include "mfemini/integrators.h"
#include "mfemini/solvers.h"

namespace {

using namespace flit;
using linalg::Vector;
using mfemini::ConstantCoefficient;
using mfemini::Mesh;
using mfemini::QuadratureRule;

/// L2 error of the nodal interpolant of exp(-k r^2) on n elements.
double projection_error(std::size_t n) {
  auto ctx = fpsem::strict_context();
  const Mesh mesh = Mesh::interval(n);
  const mfemini::ExpCoefficient f(4.0, 0.4, 0.0);
  mfemini::GridFunction gf(&mesh);
  mfemini::project_coefficient(ctx, f, gf);
  return mfemini::compute_l2_error(ctx, gf, f, QuadratureRule::gauss(3));
}

TEST(Convergence, ProjectionErrorIsSecondOrder) {
  const double e8 = projection_error(8);
  const double e16 = projection_error(16);
  const double e32 = projection_error(32);
  // Linear interpolation: O(h^2) -> halving h quarters the error.
  EXPECT_NEAR(e8 / e16, 4.0, 1.0);
  EXPECT_NEAR(e16 / e32, 4.0, 0.6);
}

/// Solves -u'' = 1 with homogeneous Dirichlet BCs on n elements and
/// returns the L2 error against the exact solution x(1-x)/2.
double poisson_error(std::size_t n) {
  auto ctx = fpsem::strict_context();
  const Mesh mesh = Mesh::interval(n);
  const ConstantCoefficient one(1.0);
  const auto& rule = QuadratureRule::gauss(3);
  auto a = mfemini::assemble_bilinear(
      ctx, mesh,
      [&](fpsem::EvalContext& c, const Mesh& m, std::size_t e,
          linalg::DenseMatrix& out) {
        mfemini::diffusion_element_matrix(c, m, e, one, rule, out);
      });
  Vector b = mfemini::assemble_domain_lf(ctx, mesh, one, rule);
  mfemini::eliminate_essential_bc(ctx, mesh, a, b, 0.0);
  Vector x(mesh.num_nodes(), 0.0);
  const auto stats = mfemini::cg_solve(ctx, mfemini::sparse_operator(a), b,
                                       x, 1e-13, 4 * static_cast<int>(n));
  EXPECT_TRUE(stats.converged);
  mfemini::GridFunction gf(&mesh);
  gf.values() = x;
  // exact u(x) = x(1-x)/2 = 0 + 0.5 x - 0.5 x^2; use the quadratic-free
  // poly coefficient trick: compare against u via pointwise evaluation.
  class Exact final : public mfemini::Coefficient {
   public:
    double eval(fpsem::EvalContext&, double x, double) const override {
      return 0.5 * x * (1.0 - x);
    }
  } exact;
  return mfemini::compute_l2_error(ctx, gf, exact, rule);
}

TEST(Convergence, PoissonSolveErrorIsSecondOrder) {
  const double e8 = poisson_error(8);
  const double e16 = poisson_error(16);
  EXPECT_GT(e8, 0.0);
  EXPECT_NEAR(e8 / e16, 4.0, 1.0);
}

TEST(Convergence, PoissonNodalValuesAreExactIn1D) {
  // A classic 1D FE fact: with exact integration, linear FE nodal values
  // of -u''=f interpolate the exact solution at the nodes.
  auto ctx = fpsem::strict_context();
  const std::size_t n = 16;
  const Mesh mesh = Mesh::interval(n);
  const ConstantCoefficient one(1.0);
  const auto& rule = QuadratureRule::gauss(3);
  auto a = mfemini::assemble_bilinear(
      ctx, mesh,
      [&](fpsem::EvalContext& c, const Mesh& m, std::size_t e,
          linalg::DenseMatrix& out) {
        mfemini::diffusion_element_matrix(c, m, e, one, rule, out);
      });
  Vector b = mfemini::assemble_domain_lf(ctx, mesh, one, rule);
  mfemini::eliminate_essential_bc(ctx, mesh, a, b, 0.0);
  Vector x(mesh.num_nodes(), 0.0);
  (void)mfemini::cg_solve(ctx, mfemini::sparse_operator(a), b, x, 1e-14,
                          200);
  for (std::size_t i = 0; i < mesh.num_nodes(); ++i) {
    const double xi = mesh.x(i);
    EXPECT_NEAR(x[i], 0.5 * xi * (1.0 - xi), 1e-10) << i;
  }
}

}  // namespace
