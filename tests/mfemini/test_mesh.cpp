// Meshes and the geometric kernels.

#include <gtest/gtest.h>

#include "mfemini/mesh.h"

namespace {

using namespace flit;
using mfemini::Mesh;

fpsem::EvalContext ctx() { return fpsem::strict_context(); }

TEST(Mesh, IntervalStructure) {
  const Mesh m = Mesh::interval(4, 0.0, 2.0);
  EXPECT_EQ(m.dim(), 1);
  EXPECT_EQ(m.num_nodes(), 5u);
  EXPECT_EQ(m.num_elements(), 4u);
  EXPECT_EQ(m.nodes_per_element(), 2u);
  EXPECT_DOUBLE_EQ(m.x(0), 0.0);
  EXPECT_DOUBLE_EQ(m.x(4), 2.0);
  EXPECT_TRUE(m.is_boundary_node(0));
  EXPECT_TRUE(m.is_boundary_node(4));
  EXPECT_FALSE(m.is_boundary_node(2));
}

TEST(Mesh, QuadGridStructure) {
  const Mesh m = Mesh::quad_grid(3, 2);
  EXPECT_EQ(m.dim(), 2);
  EXPECT_EQ(m.num_nodes(), 12u);
  EXPECT_EQ(m.num_elements(), 6u);
  EXPECT_EQ(m.nodes_per_element(), 4u);
  // Interior node of a 3x2 grid: node (1,1) = index 5.
  EXPECT_FALSE(m.is_boundary_node(5));
  EXPECT_TRUE(m.is_boundary_node(0));
}

TEST(Mesh, ElementSize1D) {
  auto c = ctx();
  const Mesh m = Mesh::interval(4, 0.0, 2.0);
  for (std::size_t e = 0; e < 4; ++e) {
    EXPECT_DOUBLE_EQ(mfemini::element_size(c, m, e), 0.5);
  }
}

TEST(Mesh, ElementSize2DShoelace) {
  auto c = ctx();
  const Mesh m = Mesh::quad_grid(2, 2);
  for (std::size_t e = 0; e < m.num_elements(); ++e) {
    EXPECT_NEAR(mfemini::element_size(c, m, e), 0.25, 1e-15);
  }
}

TEST(Mesh, TotalVolumeIsDomainMeasure) {
  auto c = ctx();
  EXPECT_NEAR(mfemini::total_volume(c, Mesh::interval(7, 0.0, 3.0)), 3.0,
              1e-14);
  EXPECT_NEAR(mfemini::total_volume(c, Mesh::quad_grid(4, 5)), 1.0, 1e-14);
}

TEST(Mesh, CurvedWarpPreservesBoundaryAndVolume1D) {
  auto c = ctx();
  Mesh m = Mesh::interval(8);
  mfemini::curved_warp(c, m, 0.05);
  EXPECT_DOUBLE_EQ(m.x(0), 0.0);
  EXPECT_DOUBLE_EQ(m.x(8), 1.0);
  // Interior moved.
  EXPECT_NE(m.x(3), 0.375);
  // Total length of a 1D chain is still the domain length.
  EXPECT_NEAR(mfemini::total_volume(c, m), 1.0, 1e-12);
}

TEST(Mesh, SizeNormPositive) {
  auto c = ctx();
  const Mesh m = Mesh::interval(4);
  EXPECT_NEAR(mfemini::size_norm(c, m), 0.5, 1e-15);
}

TEST(Mesh, WarpIsFastLibmSensitive) {
  const auto run = [&](fpsem::FpSemantics sem) {
    auto c = fpsem::uniform_context(fpsem::FnBinding{sem, {}});
    Mesh m = Mesh::interval(8);
    mfemini::curved_warp(c, m, 0.05);
    return m.x(3);
  };
  fpsem::FpSemantics fast;
  fast.fast_libm = true;
  EXPECT_NE(run({}), run(fast));
}

}  // namespace
