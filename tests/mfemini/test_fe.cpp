// Shape functions: partition of unity, node interpolation, gradients, and
// the element transformations.

#include <gtest/gtest.h>

#include "mfemini/eltrans.h"
#include "mfemini/fe.h"
#include "mfemini/mesh.h"

namespace {

using namespace flit;
using linalg::Vector;
using mfemini::Mesh;

fpsem::EvalContext ctx() { return fpsem::strict_context(); }

TEST(FE, Shape1DPartitionOfUnityAndNodes) {
  auto c = ctx();
  Vector n;
  mfemini::shape_1d(c, 0.3, n);
  EXPECT_NEAR(n[0] + n[1], 1.0, 1e-15);
  mfemini::shape_1d(c, 0.0, n);
  EXPECT_EQ(n[0], 1.0);
  EXPECT_EQ(n[1], 0.0);
  mfemini::shape_1d(c, 1.0, n);
  EXPECT_EQ(n[0], 0.0);
  EXPECT_EQ(n[1], 1.0);
}

TEST(FE, Shape2DPartitionOfUnityAndNodes) {
  auto c = ctx();
  Vector n;
  mfemini::shape_2d(c, 0.3, 0.7, n);
  EXPECT_NEAR(n[0] + n[1] + n[2] + n[3], 1.0, 1e-15);
  mfemini::shape_2d(c, 0.0, 0.0, n);
  EXPECT_EQ(n[0], 1.0);
  mfemini::shape_2d(c, 1.0, 1.0, n);
  EXPECT_EQ(n[2], 1.0);
}

TEST(FE, DShape2DRowsSumToZero) {
  auto c = ctx();
  Vector dxi, deta;
  mfemini::dshape_2d(c, 0.4, 0.6, dxi, deta);
  EXPECT_NEAR(dxi[0] + dxi[1] + dxi[2] + dxi[3], 0.0, 1e-15);
  EXPECT_NEAR(deta[0] + deta[1] + deta[2] + deta[3], 0.0, 1e-15);
}

TEST(FE, InterpolateReproducesLinearFields) {
  auto c = ctx();
  Vector n;
  mfemini::shape_1d(c, 0.25, n);
  Vector dofs{2.0, 6.0};  // u(xi) = 2 + 4 xi
  EXPECT_NEAR(mfemini::interpolate(c, n, dofs), 3.0, 1e-15);
}

TEST(ElTrans, Jacobian1DIsElementLength) {
  auto c = ctx();
  const Mesh m = Mesh::interval(5, 0.0, 2.5);
  for (std::size_t e = 0; e < 5; ++e) {
    EXPECT_DOUBLE_EQ(mfemini::jacobian_1d(c, m, e), 0.5);
  }
}

TEST(ElTrans, Jacobian2DOfAxisAlignedGrid) {
  auto c = ctx();
  const Mesh m = Mesh::quad_grid(4, 2);
  const auto j = mfemini::jacobian_2d(c, m, 0, 0.5, 0.5);
  EXPECT_NEAR(j.dxdxi, 0.25, 1e-15);
  EXPECT_NEAR(j.dydeta, 0.5, 1e-15);
  EXPECT_NEAR(j.dxdeta, 0.0, 1e-15);
  EXPECT_NEAR(j.dydxi, 0.0, 1e-15);
  EXPECT_NEAR(j.det, 0.125, 1e-15);
}

TEST(ElTrans, MapToPhysicalHitsCorners) {
  auto c = ctx();
  const Mesh m = Mesh::quad_grid(2, 2);
  double px = 0.0, py = 0.0;
  mfemini::map_to_physical(c, m, 0, 0.0, 0.0, px, py);
  EXPECT_NEAR(px, 0.0, 1e-15);
  EXPECT_NEAR(py, 0.0, 1e-15);
  mfemini::map_to_physical(c, m, 0, 1.0, 1.0, px, py);
  EXPECT_NEAR(px, 0.5, 1e-15);
  EXPECT_NEAR(py, 0.5, 1e-15);
}

TEST(ElTrans, PhysicalGradientsOfLinearField) {
  auto c = ctx();
  const Mesh m = Mesh::quad_grid(3, 3);
  // u(x,y) = 2x + 3y on the element's nodes; gradient must be (2, 3).
  Vector gx, gy;
  double detj = 0.0;
  mfemini::physical_gradients(c, m, 4, 0.3, 0.6, gx, gy, detj);
  const auto& el = m.element(4);
  double dudx = 0.0, dudy = 0.0;
  for (std::size_t k = 0; k < 4; ++k) {
    const double u = 2.0 * m.x(el[k]) + 3.0 * m.y(el[k]);
    dudx += gx[k] * u;
    dudy += gy[k] * u;
  }
  EXPECT_NEAR(dudx, 2.0, 1e-12);
  EXPECT_NEAR(dudy, 3.0, 1e-12);
  EXPECT_GT(detj, 0.0);
}

}  // namespace
