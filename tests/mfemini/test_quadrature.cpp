// Quadrature rules: weights, exactness degrees and the kernels.

#include <cmath>

#include <gtest/gtest.h>

#include "mfemini/quadrature.h"

namespace {

using namespace flit;
using mfemini::QuadratureRule;

fpsem::EvalContext ctx() { return fpsem::strict_context(); }

class GaussRuleTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GaussRuleTest, WeightsSumToOne) {
  const auto& r = QuadratureRule::gauss(GetParam());
  double s = 0.0;
  for (double w : r.weights) s += w;
  EXPECT_NEAR(s, 1.0, 1e-15);
  EXPECT_EQ(r.points.size(), GetParam());
}

TEST_P(GaussRuleTest, IntegratesPolynomialsOfDegree2nMinus1) {
  const std::size_t n = GetParam();
  const auto& r = QuadratureRule::gauss(n);
  auto c = ctx();
  // integral of x^d over [0,1] = 1/(d+1), exact for d <= 2n-1.
  for (std::size_t d = 0; d + 1 <= 2 * n; ++d) {
    linalg::Vector f(r.points.size());
    for (std::size_t q = 0; q < r.points.size(); ++q) {
      f[q] = std::pow(r.points[q], static_cast<double>(d));
    }
    EXPECT_NEAR(mfemini::integrate(c, r, f, 1.0),
                1.0 / static_cast<double>(d + 1), 1e-14)
        << "n=" << n << " d=" << d;
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, GaussRuleTest, ::testing::Values(1u, 2u, 3u));

TEST(Quadrature, InvalidOrderRejected) {
  EXPECT_THROW((void)QuadratureRule::gauss(0), std::invalid_argument);
  EXPECT_THROW((void)QuadratureRule::gauss(4), std::invalid_argument);
}

TEST(Quadrature, IntegrateChecksSizes) {
  auto c = ctx();
  linalg::Vector wrong(2);
  EXPECT_THROW(
      (void)mfemini::integrate(c, QuadratureRule::gauss(3), wrong, 1.0),
      std::invalid_argument);
}

TEST(Quadrature, MapPointIsAffine) {
  auto c = ctx();
  EXPECT_DOUBLE_EQ(mfemini::map_point(c, 2.0, 6.0, 0.0), 2.0);
  EXPECT_DOUBLE_EQ(mfemini::map_point(c, 2.0, 6.0, 1.0), 6.0);
  EXPECT_DOUBLE_EQ(mfemini::map_point(c, 2.0, 6.0, 0.5), 4.0);
}

TEST(Quadrature, TensorWeight) {
  auto c = ctx();
  const auto& r = QuadratureRule::gauss(2);
  EXPECT_DOUBLE_EQ(mfemini::tensor_weight(c, r, 0, 1, 2.0),
                   2.0 * r.weights[0] * r.weights[1]);
}

}  // namespace
