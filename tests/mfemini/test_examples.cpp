// The 19 MFEM mini examples: every one runs, is deterministic, and has the
// engineered sensitivity profile (invariance of 12/18, libm use of
// 4/5/9/10/15, FMA-fragility of 8/13).

#include <gtest/gtest.h>

#include "mfemini/examples.h"
#include "toolchain/semantics_rules.h"

namespace {

using namespace flit;
using linalg::Vector;

Vector run_under(int idx, fpsem::FpSemantics sem) {
  auto ctx = fpsem::uniform_context(fpsem::FnBinding{sem, {}});
  return mfemini::run_example(idx, ctx);
}

long double rel_diff(const Vector& a, const Vector& b) {
  return linalg::l2_string_metric(linalg::serialize(a), linalg::serialize(b),
                                  /*relative=*/true);
}

class ExampleTest : public ::testing::TestWithParam<int> {};

TEST_P(ExampleTest, RunsAndProducesFiniteValues) {
  const Vector v = run_under(GetParam(), {});
  ASSERT_FALSE(v.empty());
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_TRUE(std::isfinite(v[i])) << "entry " << i;
  }
}

TEST_P(ExampleTest, DeterministicAcrossRuns) {
  EXPECT_EQ(run_under(GetParam(), {}), run_under(GetParam(), {}));
}

TEST_P(ExampleTest, DeterministicUnderAggressiveSemanticsToo) {
  fpsem::FpSemantics sem;
  sem.contract_fma = true;
  sem.reassoc_width = 4;
  sem.unsafe_math = true;
  sem.fast_libm = true;
  EXPECT_EQ(run_under(GetParam(), sem), run_under(GetParam(), sem));
}

INSTANTIATE_TEST_SUITE_P(All19, ExampleTest,
                         ::testing::Range(1, mfemini::kNumExamples + 1));

TEST(ExampleInvariance, Examples12And18AreBitwiseInvariant) {
  for (int idx : {12, 18}) {
    const Vector base = run_under(idx, {});
    fpsem::FpSemantics sems[4];
    sems[0].contract_fma = true;
    sems[1].reassoc_width = 4;
    sems[1].unsafe_math = true;
    sems[2].extended_precision = true;
    sems[3].contract_fma = true;
    sems[3].reassoc_width = 8;
    sems[3].unsafe_math = true;
    sems[3].flush_subnormals = true;
    sems[3].fast_libm = true;
    for (const auto& s : sems) {
      EXPECT_EQ(run_under(idx, s), base) << "example " << idx;
    }
  }
}

TEST(ExampleSensitivity, MostExamplesChangeUnderFullFastMath) {
  fpsem::FpSemantics sem;
  sem.contract_fma = true;
  sem.reassoc_width = 4;
  sem.unsafe_math = true;
  sem.fast_libm = true;
  int variable = 0;
  for (int idx = 1; idx <= mfemini::kNumExamples; ++idx) {
    if (rel_diff(run_under(idx, {}), run_under(idx, sem)) > 0.0L) ++variable;
  }
  EXPECT_GE(variable, 14);  // nearly everything except 12/18 moves
}

TEST(ExampleSensitivity, LibmExamplesReactToFastLibmAlone) {
  fpsem::FpSemantics sem;
  sem.fast_libm = true;
  for (int idx : {4, 5, 9, 10, 15}) {
    EXPECT_GT(rel_diff(run_under(idx, {}), run_under(idx, sem)), 0.0L)
        << "example " << idx;
  }
}

TEST(ExampleSensitivity, Example13HasCatastrophicRelativeError) {
  fpsem::FpSemantics sem;
  sem.contract_fma = true;
  const long double err = rel_diff(run_under(13, {}), run_under(13, sem));
  EXPECT_GT(err, 0.5L);   // O(100%) relative error, as in Finding 2
  EXPECT_LT(err, 50.0L);  // but not unbounded garbage
}

TEST(ExampleSensitivity, Example8MovesUnderFmaMoreThanTypicalExamples) {
  fpsem::FpSemantics sem;
  sem.contract_fma = true;
  const long double e8 = rel_diff(run_under(8, {}), run_under(8, sem));
  const long double e1 = rel_diff(run_under(1, {}), run_under(1, sem));
  EXPECT_GT(e8, 0.0L);
  EXPECT_GE(e8, e1);
}

TEST(Examples, InvalidIndexThrows) {
  auto ctx = fpsem::strict_context();
  EXPECT_THROW((void)mfemini::run_example(0, ctx), std::out_of_range);
  EXPECT_THROW((void)mfemini::run_example(20, ctx), std::out_of_range);
}

TEST(Examples, SourceFileListMatchesTheCodeModel) {
  const auto files = mfemini::mfem_source_files();
  EXPECT_EQ(files.size(), 13u);
  auto& model = fpsem::global_code_model();
  for (const auto& f : files) {
    EXPECT_FALSE(model.functions_in(f).empty()) << f;
  }
}

TEST(ExampleAdapter, TestBaseRoundTrip) {
  mfemini::MfemExampleTest t(3);
  EXPECT_EQ(t.name(), "MFEM_ex3");
  EXPECT_EQ(t.getInputsPerRun(), 0u);
  auto ctx = fpsem::strict_context();
  const auto r = t.run_impl({}, ctx);
  ASSERT_TRUE(std::holds_alternative<std::string>(r));
  const auto& s = std::get<std::string>(r);
  EXPECT_EQ(t.compare(s, s), 0.0L);
}

TEST(ExampleAdapter, CompareIsRelativeL2) {
  mfemini::MfemExampleTest t(1);
  Vector a{2.0, 0.0}, b{2.0, 1.0};
  EXPECT_EQ(t.compare(linalg::serialize(a), linalg::serialize(b)), 0.5L);
}

}  // namespace
