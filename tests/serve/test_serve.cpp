// The study service: strict request admission, deduplication, the
// multi-tenant bitwise-identity matrix (a request's merged study, CSV,
// and converged database are byte-identical to a solo one-shot run under
// every tested mix of concurrent tenants, lanes, steal policy, and cache
// budget), eviction-under-pressure identity, per-tenant CacheStats
// reconciliation against the aggregate, checkpoint-resume convergence,
// and the workflow mode's report identity.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/explorer.h"
#include "core/faults.h"
#include "core/registry.h"
#include "core/report.h"
#include "core/resultsdb.h"
#include "core/workflow.h"
#include "mfemini/examples.h"
#include "serve/request.h"
#include "serve/service.h"
#include "toolchain/compiler.h"

namespace {

using namespace flit;
using core::FaultInjector;
using serve::RequestMode;
using serve::ServeOptions;
using serve::ServeReport;
using serve::StudyRequest;
using serve::StudyService;
using toolchain::CacheStats;
using toolchain::Compilation;

namespace fs = std::filesystem;

// ---------------------------------------------------------------- units

TEST(StudyRequestParse, ParsesEveryKeyOfAFullRequestLine) {
  const StudyRequest r = serve::parse_request_line(
      R"({"id":"r1","tenant":"alice","test":"MFEM_ex1","mode":"workflow",)"
      R"("compilers":["g++","clang++"],"limit":12})");
  EXPECT_EQ(r.id, "r1");
  EXPECT_EQ(r.tenant, "alice");
  EXPECT_EQ(r.test, "MFEM_ex1");
  EXPECT_EQ(r.mode, RequestMode::Workflow);
  EXPECT_EQ(r.compilers, (std::vector<std::string>{"g++", "clang++"}));
  EXPECT_EQ(r.limit, 12u);
}

TEST(StudyRequestParse, AppliesTheDocumentedDefaults) {
  const StudyRequest r =
      serve::parse_request_line(R"({"id":"solo","test":"MFEM_ex2"})");
  EXPECT_EQ(r.tenant, "solo");  // tenant defaults to id
  EXPECT_EQ(r.mode, RequestMode::Explore);
  EXPECT_TRUE(r.compilers.empty());
  EXPECT_EQ(r.limit, 0u);
}

TEST(StudyRequestParse, RejectsMalformedLinesWithTheOffendingDetail) {
  const auto rejects = [](const std::string& line, const std::string& hint) {
    try {
      (void)serve::parse_request_line(line);
      FAIL() << "accepted: " << line;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(hint), std::string::npos)
          << line << " -> " << e.what();
    }
  };
  rejects(R"({"test":"MFEM_ex1"})", "missing required 'id'");
  rejects(R"({"id":"a"})", "missing required 'test'");
  rejects(R"({"id":"a","test":"T","mode":"bisect"})", "mode");
  rejects(R"({"id":"a","test":"T","unknown":"x"})", "unknown key");
  rejects(R"({"id":"a","test":"T"} trailing)", "trailing");
  rejects(R"({"id":"a/b","test":"T"})", "A-Za-z0-9");
  rejects(R"({"id":"a","id":"b","test":"T"})", "duplicate key");
  rejects(R"({"id":"a","test":"T","limit":-1})", "non-negative");
  rejects(R"(["id"])", "expected '{'");
}

TEST(StudyRequestParse, StreamReaderSkipsCommentsAndNamesDuplicateIds) {
  std::istringstream ok(
      "# a comment\n"
      "\n"
      "{\"id\":\"a\",\"test\":\"T\"}\r\n"
      "{\"id\":\"b\",\"test\":\"T\"}\n");
  EXPECT_EQ(serve::read_requests(ok).size(), 2u);

  std::istringstream dup(
      "{\"id\":\"a\",\"test\":\"T\"}\n"
      "{\"id\":\"a\",\"test\":\"U\"}\n");
  try {
    (void)serve::read_requests(dup);
    FAIL() << "accepted duplicate id";
  } catch (const std::invalid_argument& e) {
    // Names the offending id and the line it appeared on.
    EXPECT_NE(std::string(e.what()).find("duplicate request id 'a'"),
              std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
        << e.what();
  }
}

TEST(StudyRequestSubspace, FiltersByCompilerAndTruncatesInSpaceOrder) {
  const auto space = toolchain::mfem_study_space();
  StudyRequest r;
  r.compilers = {"clang++"};
  const auto sub = serve::request_subspace(r, space);
  ASSERT_FALSE(sub.empty());
  for (const Compilation& c : sub) EXPECT_EQ(c.compiler.name, "clang++");

  r.limit = 5;
  const auto capped = serve::request_subspace(r, space);
  ASSERT_EQ(capped.size(), 5u);
  for (std::size_t i = 0; i < capped.size(); ++i) {
    EXPECT_EQ(capped[i], sub[i]);  // truncation preserves order
  }
}

TEST(StudyRequestSubspace, PayloadKeyIgnoresIdentityButNotTheStudyInput) {
  StudyRequest a, b;
  a.id = "a";
  a.tenant = "alice";
  b.id = "b";
  b.tenant = "bob";
  a.test = b.test = "MFEM_ex1";
  a.compilers = b.compilers = {"g++"};
  a.limit = b.limit = 8;
  EXPECT_EQ(a.payload_key(), b.payload_key());
  b.limit = 9;
  EXPECT_NE(a.payload_key(), b.payload_key());
  b.limit = 8;
  b.mode = RequestMode::Workflow;
  EXPECT_NE(a.payload_key(), b.payload_key());
}

// ---------------------------------------------------------- integration

void register_examples() {
  auto& reg = core::global_test_registry();
  for (int ex = 1; ex <= 3; ++ex) {
    const std::string name = "MFEM_ex" + std::to_string(ex);
    if (reg.contains(name)) continue;
    reg.add(name, [ex] {
      return std::unique_ptr<core::TestBase>(
          std::make_unique<mfemini::MfemExampleTest>(ex));
    });
  }
}

std::string file_bytes(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void expect_identical_studies(const core::StudyResult& a,
                              const core::StudyResult& b) {
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  EXPECT_EQ(a.test_name, b.test_name);
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_EQ(a.outcomes[i].comp, b.outcomes[i].comp) << i;
    EXPECT_EQ(a.outcomes[i].variability, b.outcomes[i].variability) << i;
    EXPECT_EQ(a.outcomes[i].cycles, b.outcomes[i].cycles) << i;
    EXPECT_EQ(a.outcomes[i].speedup, b.outcomes[i].speedup) << i;
    EXPECT_EQ(a.outcomes[i].status, b.outcomes[i].status) << i;
    EXPECT_EQ(a.outcomes[i].attempts, b.outcomes[i].attempts) << i;
    EXPECT_EQ(a.outcomes[i].reason, b.outcomes[i].reason) << i;
  }
}

class ServeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultInjector::global().disarm();
    register_examples();
    dir_ = fs::temp_directory_path() /
           ("flit_serve_" + std::string(::testing::UnitTest::GetInstance()
                                            ->current_test_info()
                                            ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    space_ = toolchain::mfem_study_space();
  }
  void TearDown() override {
    FaultInjector::global().disarm();
    fs::remove_all(dir_);
  }

  /// The concurrent-tenant mix of the identity matrix: three studies over
  /// distinct tests and subspaces, small enough to cross with every
  /// scheduling and budget configuration.
  [[nodiscard]] std::vector<StudyRequest> tenant_mix() const {
    StudyRequest a;
    a.id = "a";
    a.tenant = "alice";
    a.test = "MFEM_ex1";
    a.compilers = {"g++"};
    a.limit = 10;
    StudyRequest b;
    b.id = "b";
    b.tenant = "bob";
    b.test = "MFEM_ex2";
    b.compilers = {"clang++"};
    b.limit = 10;
    StudyRequest c;
    c.id = "c";
    c.tenant = "carol";
    c.test = "MFEM_ex3";
    c.compilers = {"g++", "icpc"};
    c.limit = 12;
    return {a, b, c};
  }

  /// Solo one-shot reference for one request: its own explorer, its own
  /// cold cache, its own database -- the bytes the service must match.
  struct SoloRun {
    core::StudyResult study;
    std::string csv;
    std::string db;
  };
  [[nodiscard]] SoloRun solo_run(const StudyRequest& req) const {
    const auto sub = serve::request_subspace(req, space_);
    core::SpaceExplorer explorer(&fpsem::global_code_model(),
                                 toolchain::mfem_baseline(),
                                 toolchain::mfem_speed_reference(), 1);
    const fs::path db_path = dir_ / ("solo-" + req.id + ".tsv");
    fs::remove(db_path);
    core::ResultsDb db(db_path);
    core::ExploreOptions eo;
    eo.db = &db;
    SoloRun out;
    out.study = explorer.explore(*core::global_test_registry().create(
                                     req.test),
                                 sub, eo);
    out.csv = core::study_csv(out.study);
    out.db = file_bytes(db_path);
    return out;
  }

  /// Constructs a service over the canonical space and runs the requests
  /// (the service holds the shared cache, so it is deliberately
  /// unmovable; a helper that runs in place keeps the tests terse).
  [[nodiscard]] ServeReport run_service(
      ServeOptions opts, const std::vector<StudyRequest>& requests) const {
    StudyService service(&fpsem::global_code_model(),
                         toolchain::mfem_baseline(),
                         toolchain::mfem_speed_reference(), space_,
                         std::move(opts));
    return service.run(requests);
  }

  fs::path dir_;
  std::vector<Compilation> space_;
};

TEST_F(ServeTest, IdentityMatrixAcrossLanesStealAndCacheBudget) {
  const auto requests = tenant_mix();
  std::vector<SoloRun> solo;
  for (const StudyRequest& r : requests) solo.push_back(solo_run(r));

  // The tight budget: half of what the mix needs resident, measured on an
  // unbounded rehearsal -- enough to force evictions, not enough to pin
  // everything.
  std::uint64_t full_bytes = 0;
  {
    ServeOptions opts;
    opts.state_dir = dir_ / "rehearsal";
    const ServeReport rep = run_service(opts, requests);
    full_bytes = rep.cache_resident_bytes;
  }
  ASSERT_GT(full_bytes, 0u);

  const std::optional<std::uint64_t> budgets[] = {
      std::nullopt, full_bytes / 2, std::uint64_t{0}};
  for (const int shards : {1, 2, 4}) {
    for (const bool steal : {true, false}) {
      for (const auto& budget : budgets) {
        ServeOptions opts;
        opts.shards = shards;
        opts.jobs = 2;
        opts.steal = steal;
        opts.cache_budget = budget;
        opts.checkpoint_batch = 4;  // several claims per study
        opts.max_inflight = 2;      // exercises admission turnover
        opts.state_dir =
            dir_ / ("s" + std::to_string(shards) + (steal ? "t" : "f") +
                    (budget.has_value() ? std::to_string(*budget) : "u"));
        const ServeReport rep = run_service(opts, requests);

        ASSERT_EQ(rep.requests.size(), requests.size());
        CacheStats attributed;
        for (std::size_t i = 0; i < requests.size(); ++i) {
          const serve::RequestReport& rr = rep.requests[i];
          expect_identical_studies(rr.study, solo[i].study);
          EXPECT_EQ(rr.csv, solo[i].csv);
          EXPECT_EQ(file_bytes(rr.db_path), solo[i].db)
              << shards << (steal ? " steal " : " pinned ") << rr.id;
          attributed += rr.cache;
        }
        // Per-tenant attribution reconciles against the aggregate
        // exactly: the scheduler is serial, so snapshot deltas are the
        // whole story.
        EXPECT_EQ(attributed, rep.cache);
        if (budget.has_value()) {
          EXPECT_LE(rep.cache_resident_bytes, *budget);
          EXPECT_GT(rep.cache.evictions, 0u);
        } else {
          EXPECT_EQ(rep.cache.evictions, 0u);
        }
      }
    }
  }
}

TEST_F(ServeTest, DeduplicatedRequestsShareByteIdenticalResults) {
  auto requests = tenant_mix();
  StudyRequest dup = requests[0];  // same payload as "a", new identity
  dup.id = "dup";
  dup.tenant = "dave";
  requests.push_back(dup);

  ServeOptions opts;
  opts.shards = 2;
  opts.state_dir = dir_ / "state";
  const ServeReport rep = run_service(opts, requests);

  ASSERT_EQ(rep.requests.size(), 4u);
  EXPECT_EQ(rep.deduplicated, 1u);
  const serve::RequestReport& primary = rep.requests[0];
  const serve::RequestReport& follower = rep.requests[3];
  EXPECT_FALSE(primary.deduplicated);
  EXPECT_TRUE(follower.deduplicated);
  EXPECT_EQ(follower.primary, "a");
  expect_identical_studies(follower.study, primary.study);
  EXPECT_EQ(follower.csv, primary.csv);
  EXPECT_EQ(file_bytes(follower.db_path), file_bytes(primary.db_path));
  // The shared-cache activity lands on the primary; the follower ran
  // nothing.
  EXPECT_EQ(follower.cache, CacheStats{});
  EXPECT_EQ(follower.batches, 0u);
  // And the follower's bytes are what a solo run of its request produces.
  const SoloRun solo = solo_run(dup);
  EXPECT_EQ(file_bytes(follower.db_path), solo.db);
}

TEST_F(ServeTest, ZeroBudgetEvictsEverythingYetStaysByteIdentical) {
  // Eviction under maximal pressure: nothing is ever retained, every
  // lookup misses, and the results still match the solo run -- cache
  // contents affect cycles, never bytes.
  const auto requests = tenant_mix();
  ServeOptions opts;
  opts.shards = 2;
  opts.cache_budget = 0;
  opts.state_dir = dir_ / "state";
  const ServeReport rep = run_service(opts, requests);
  EXPECT_EQ(rep.cache.hits, 0u);
  EXPECT_EQ(rep.cache.evictions, rep.cache.misses);
  EXPECT_EQ(rep.cache_resident_bytes, 0u);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const SoloRun solo = solo_run(requests[i]);
    expect_identical_studies(rep.requests[i].study, solo.study);
    EXPECT_EQ(file_bytes(rep.requests[i].db_path), solo.db);
  }
}

TEST_F(ServeTest, ResumePrefillsCheckpointsAndConvergesToSoloBytes) {
  // Simulate the restart half of a killed daemon: one request's database
  // already holds its first checkpoints (written by a partial run), the
  // other requests have nothing.  --resume must re-run only the missing
  // rows and converge every database to the solo-run bytes.
  const auto requests = tenant_mix();
  const fs::path state = dir_ / "state";
  fs::create_directories(state);
  {
    const auto sub = serve::request_subspace(requests[0], space_);
    const std::vector<Compilation> head(sub.begin(), sub.begin() + 4);
    core::SpaceExplorer explorer(&fpsem::global_code_model(),
                                 toolchain::mfem_baseline(),
                                 toolchain::mfem_speed_reference(), 1);
    core::ResultsDb db(state / "a.tsv");
    core::ExploreOptions eo;
    eo.db = &db;
    (void)explorer.explore(
        *core::global_test_registry().create(requests[0].test), head, eo);
  }

  ServeOptions opts;
  opts.shards = 2;
  opts.state_dir = state;
  opts.resume = true;
  opts.checkpoint_batch = 4;
  const ServeReport rep = run_service(opts, requests);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const SoloRun solo = solo_run(requests[i]);
    EXPECT_EQ(file_bytes(rep.requests[i].db_path), solo.db)
        << requests[i].id;
  }
}

TEST_F(ServeTest, WorkflowModeReportMatchesTheSoloWorkflow) {
  StudyRequest req;
  req.id = "wf";
  req.tenant = "alice";
  req.test = "MFEM_ex1";
  req.compilers = {"g++"};
  req.limit = 12;
  req.mode = RequestMode::Workflow;
  StudyRequest noise = tenant_mix()[1];

  ServeOptions opts;
  opts.shards = 2;
  opts.jobs = 2;
  opts.state_dir = dir_ / "state";
  const ServeReport rep =
      run_service(opts, std::vector<StudyRequest>{req, noise});

  // The solo reference: the same workflow over the same subspace with the
  // service's Level 3 knobs, explored serially from a cold cache.
  core::WorkflowOptions wopts;
  wopts.baseline = toolchain::mfem_baseline();
  wopts.speed_reference = toolchain::mfem_speed_reference();
  wopts.max_bisects = 1;
  wopts.k = 1;
  wopts.jobs = opts.jobs;
  const auto sub = serve::request_subspace(req, space_);
  const core::WorkflowReport solo = core::run_workflow(
      &fpsem::global_code_model(),
      *core::global_test_registry().create(req.test), sub, wopts);
  EXPECT_EQ(rep.requests[0].workflow_text,
            core::workflow_report_text(solo));
  EXPECT_TRUE(
      fs::exists(rep.requests[0].db_path.parent_path() / "wf.workflow.txt"));
}

TEST_F(ServeTest, EventStreamsNarrateAdmissionBatchesAndCompletion) {
  const auto requests = tenant_mix();
  std::map<std::string, std::vector<std::string>> events;
  ServeOptions opts;
  opts.checkpoint_batch = 4;
  opts.event_sink = [&events](const std::string& tenant,
                              const std::string& line) {
    events[tenant].push_back(line);
  };
  const ServeReport rep = run_service(opts, requests);

  for (std::size_t i = 0; i < requests.size(); ++i) {
    const auto& lines = events[requests[i].tenant];
    const std::size_t items = rep.requests[i].items;
    const std::size_t batches = (items + 3) / 4;
    ASSERT_EQ(lines.size(), 2 + batches) << requests[i].tenant;
    EXPECT_NE(lines.front().find("\"event\":\"admitted\""),
              std::string::npos);
    for (std::size_t b = 0; b < batches; ++b) {
      EXPECT_NE(lines[1 + b].find("\"event\":\"batch\""), std::string::npos);
    }
    EXPECT_NE(lines.back().find("\"event\":\"done\""), std::string::npos);
    EXPECT_NE(lines.back().find("\"items\":" + std::to_string(items)),
              std::string::npos);
  }
}

TEST_F(ServeTest, ValidationRejectsUnknownTestsCompilersAndBadOptions) {
  StudyRequest bad_test;
  bad_test.id = "x";
  bad_test.tenant = "x";
  bad_test.test = "NoSuchTest";
  EXPECT_THROW((void)run_service(ServeOptions{},
                            std::vector<StudyRequest>{bad_test}),
               std::invalid_argument);

  StudyRequest bad_compiler;
  bad_compiler.id = "y";
  bad_compiler.tenant = "y";
  bad_compiler.test = "MFEM_ex1";
  bad_compiler.compilers = {"tcc"};
  try {
    (void)run_service(ServeOptions{},
                      std::vector<StudyRequest>{bad_compiler});
    FAIL() << "accepted unknown compiler";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("'y'"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("tcc"), std::string::npos);
  }

  ServeOptions bad;
  bad.shards = 0;
  EXPECT_THROW((void)run_service(bad, {}), std::invalid_argument);
  ServeOptions no_state;
  no_state.resume = true;
  EXPECT_THROW((void)run_service(no_state, {}), std::invalid_argument);
  ServeOptions zero_inflight;
  zero_inflight.max_inflight = 0;
  EXPECT_THROW((void)run_service(zero_inflight, {}), std::invalid_argument);
}

}  // namespace
