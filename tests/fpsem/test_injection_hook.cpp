// Injection hook: pass-1 site recording and pass-2 single-site arming.

#include <gtest/gtest.h>

#include "fpsem/env.h"
#include "fpsem/injection_hook.h"

namespace {

using namespace flit::fpsem;

FunctionId fn_a() {
  static const FunctionId id = register_fn({
      .name = "test::inj_fn_a",
      .file = "test/injection_hook.cpp",
  });
  return id;
}
FunctionId fn_b() {
  static const FunctionId id = register_fn({
      .name = "test::inj_fn_b",
      .file = "test/injection_hook.cpp",
  });
  return id;
}

/// A tiny "application function" with two static FP instruction sites.
double work_a(EvalContext& ctx, double x) {
  FpEnv env = ctx.fn(fn_a());
  const double y = env.mul(x, 3.0);   // site 1
  return env.add(y, 1.0);             // site 2
}

double work_b(EvalContext& ctx, double x) {
  FpEnv env = ctx.fn(fn_b());
  return env.sub(x, 2.0);             // site 3
}

EvalContext make_ctx() {
  (void)fn_a();  // ensure registration before sizing the map
  (void)fn_b();
  return EvalContext(SemanticsMap(global_code_model().function_count()));
}

TEST(InjectionHook, RecorderEnumeratesDistinctStaticSites) {
  EvalContext ctx = make_ctx();
  auto hook = InjectionHook::recorder();
  ctx.set_injection_hook(&hook);
  for (int i = 0; i < 5; ++i) {
    (void)work_a(ctx, 1.0 + i);
    (void)work_b(ctx, 2.0 + i);
  }
  const auto sites = hook.sites();
  ASSERT_EQ(sites.size(), 3u);  // 3 static instructions despite 5 runs
  int in_a = 0, in_b = 0;
  for (const auto& s : sites) {
    if (s.fn == fn_a()) ++in_a;
    if (s.fn == fn_b()) ++in_b;
  }
  EXPECT_EQ(in_a, 2);
  EXPECT_EQ(in_b, 1);
}

TEST(InjectionHook, InjectorPerturbsOnlyTheArmedSite) {
  // Record to get the exact site identities.
  EvalContext rctx = make_ctx();
  auto rec = InjectionHook::recorder();
  rctx.set_injection_hook(&rec);
  (void)work_a(rctx, 1.0);
  (void)work_b(rctx, 1.0);
  const auto sites = rec.sites();
  ASSERT_EQ(sites.size(), 3u);

  const double clean_a = [&] {
    EvalContext c = make_ctx();
    return work_a(c, 1.0);
  }();
  const double clean_b = [&] {
    EvalContext c = make_ctx();
    return work_b(c, 1.0);
  }();

  for (const auto& target : sites) {
    EvalContext ctx = make_ctx();
    auto inj = InjectionHook::injector(target, InjectOp::Add, 0.5);
    ctx.set_injection_hook(&inj);
    const double a = work_a(ctx, 1.0);
    const double b = work_b(ctx, 1.0);
    if (target.fn == fn_a()) {
      EXPECT_NE(a, clean_a);
      EXPECT_EQ(b, clean_b);
    } else {
      EXPECT_EQ(a, clean_a);
      EXPECT_NE(b, clean_b);
    }
    EXPECT_EQ(inj.hits(), 1u);
  }
}

TEST(InjectionHook, AllFourOperationsApply) {
  EvalContext rctx = make_ctx();
  auto rec = InjectionHook::recorder();
  rctx.set_injection_hook(&rec);
  (void)work_b(rctx, 7.0);
  const auto sites = rec.sites();
  ASSERT_EQ(sites.size(), 1u);

  const auto run_with = [&](InjectOp op, double eps) {
    EvalContext ctx = make_ctx();
    auto inj = InjectionHook::injector(sites[0], op, eps);
    ctx.set_injection_hook(&inj);
    return work_b(ctx, 7.0);
  };
  EXPECT_EQ(run_with(InjectOp::Add, 0.5), (7.0 + 0.5) - 2.0);
  EXPECT_EQ(run_with(InjectOp::Sub, 0.5), (7.0 - 0.5) - 2.0);
  EXPECT_EQ(run_with(InjectOp::Mul, 0.5), (7.0 * 0.5) - 2.0);
  EXPECT_EQ(run_with(InjectOp::Div, 0.5), (7.0 / 0.5) - 2.0);
}

TEST(InjectionHook, TinyEpsilonCanBeBenign) {
  EvalContext rctx = make_ctx();
  auto rec = InjectionHook::recorder();
  rctx.set_injection_hook(&rec);
  (void)work_b(rctx, 7.0);
  const auto sites = rec.sites();
  ASSERT_EQ(sites.size(), 1u);

  EvalContext ctx = make_ctx();
  auto inj = InjectionHook::injector(sites[0], InjectOp::Add, 1e-100);
  ctx.set_injection_hook(&inj);
  EXPECT_EQ(work_b(ctx, 7.0), 7.0 - 2.0);  // absorbed: not measurable
  EXPECT_EQ(inj.hits(), 1u);
}

TEST(InjectionHook, SiteOrderingIsDeterministic) {
  const auto collect = [] {
    EvalContext ctx = make_ctx();
    auto rec = InjectionHook::recorder();
    ctx.set_injection_hook(&rec);
    (void)work_a(ctx, 1.0);
    (void)work_b(ctx, 1.0);
    return rec.sites();
  };
  const auto s1 = collect();
  const auto s2 = collect();
  EXPECT_EQ(s1, s2);
}

}  // namespace
