// CodeModel: registration rules, file/function queries, symbol coverage.

#include <gtest/gtest.h>

#include "fpsem/code_model.h"

namespace {

using namespace flit::fpsem;

CodeModel make_model() {
  CodeModel m;
  m.add({.name = "a::one", .file = "a.cpp"});
  m.add({.name = "a::two", .file = "a.cpp"});
  m.add({.name = "a::hidden",
         .file = "a.cpp",
         .exported = false,
         .host_symbol = "a::one"});
  m.add({.name = "b::solo", .file = "b.cpp", .uses_libm = true});
  return m;
}

TEST(CodeModel, RegistersAndLooksUp) {
  CodeModel m = make_model();
  EXPECT_EQ(m.function_count(), 4u);
  ASSERT_TRUE(m.find("a::two").has_value());
  EXPECT_EQ(m.info(*m.find("a::two")).file, "a.cpp");
  EXPECT_FALSE(m.find("missing").has_value());
}

TEST(CodeModel, FilesInRegistrationOrder) {
  CodeModel m = make_model();
  ASSERT_EQ(m.files().size(), 2u);
  EXPECT_EQ(m.files()[0], "a.cpp");
  EXPECT_EQ(m.files()[1], "b.cpp");
}

TEST(CodeModel, FunctionsInFile) {
  CodeModel m = make_model();
  EXPECT_EQ(m.functions_in("a.cpp").size(), 3u);
  EXPECT_EQ(m.functions_in("b.cpp").size(), 1u);
  EXPECT_TRUE(m.functions_in("zzz.cpp").empty());
}

TEST(CodeModel, ExportedSymbolsExcludeInternal) {
  CodeModel m = make_model();
  const auto syms = m.exported_symbols_of("a.cpp");
  EXPECT_EQ(syms, (std::vector<std::string>{"a::one", "a::two"}));
}

TEST(CodeModel, CoverageFollowsHostSymbol) {
  CodeModel m = make_model();
  const auto covered = m.functions_covered_by("a.cpp", {"a::one"});
  // a::one itself plus a::hidden (hosted by a::one).
  ASSERT_EQ(covered.size(), 2u);
  EXPECT_EQ(m.info(covered[0]).name, "a::one");
  EXPECT_EQ(m.info(covered[1]).name, "a::hidden");

  const auto covered2 = m.functions_covered_by("a.cpp", {"a::two"});
  ASSERT_EQ(covered2.size(), 1u);
  EXPECT_EQ(m.info(covered2[0]).name, "a::two");
}

TEST(CodeModel, AverageFunctionsPerFile) {
  CodeModel m = make_model();
  EXPECT_DOUBLE_EQ(m.average_functions_per_file(), 2.0);
  EXPECT_DOUBLE_EQ(CodeModel{}.average_functions_per_file(), 0.0);
}

TEST(CodeModel, RejectsDuplicateNames) {
  CodeModel m = make_model();
  EXPECT_THROW(m.add({.name = "a::one", .file = "c.cpp"}),
               std::invalid_argument);
}

TEST(CodeModel, RejectsAnonymousOrHomelessFunctions) {
  CodeModel m;
  EXPECT_THROW(m.add({.name = "", .file = "c.cpp"}), std::invalid_argument);
  EXPECT_THROW(m.add({.name = "x", .file = ""}), std::invalid_argument);
}

TEST(CodeModel, InternalFunctionsRequireHostSymbol) {
  CodeModel m;
  EXPECT_THROW(m.add({.name = "x", .file = "c.cpp", .exported = false}),
               std::invalid_argument);
}

TEST(CodeModel, GlobalModelHasTheApplicationKernels) {
  // This test binary links flit_core only; the global model still exists
  // and is usable (contents depend on which app libraries are linked in).
  CodeModel& g = global_code_model();
  EXPECT_EQ(&g, &global_code_model());
}

}  // namespace
