// Unit and property tests for the floating-point semantics engine: strict
// IEEE behaviour of the baseline, and each variability mechanism (FMA
// contraction, lane reassociation, extended precision, unsafe rewrites,
// FTZ, fast libm) changing results in the expected, bounded way.

#include <cmath>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "fpsem/env.h"

namespace {

using namespace flit::fpsem;

FunctionId test_fn() {
  static const FunctionId id = register_fn({
      .name = "test::env_ops_fn",
      .file = "test/env_ops.cpp",
  });
  return id;
}

EvalContext make_ctx(FpSemantics sem, CostFactors cost = {}) {
  const FunctionId id = test_fn();  // ensure registration before sizing
  SemanticsMap map(global_code_model().function_count());
  map.binding(id) = FnBinding{sem, cost};
  return EvalContext(std::move(map));
}

TEST(EnvScalarOps, StrictMatchesIeee) {
  EvalContext ctx = make_ctx({});
  FpEnv env = ctx.fn(test_fn());
  EXPECT_EQ(env.add(0.1, 0.2), 0.1 + 0.2);
  EXPECT_EQ(env.sub(1.0, 0.3), 1.0 - 0.3);
  EXPECT_EQ(env.mul(0.1, 0.3), 0.1 * 0.3);
  EXPECT_EQ(env.div(1.0, 3.0), 1.0 / 3.0);
  EXPECT_EQ(env.sqrt(2.0), std::sqrt(2.0));
  EXPECT_EQ(env.exp(1.5), std::exp(1.5));
  EXPECT_EQ(env.log(1.5), std::log(1.5));
  EXPECT_EQ(env.sin(1.5), std::sin(1.5));
  EXPECT_EQ(env.cos(1.5), std::cos(1.5));
  EXPECT_EQ(env.pow(1.5, 2.5), std::pow(1.5, 2.5));
}

TEST(EnvScalarOps, MulAddStrictIsTwoRoundings) {
  EvalContext ctx = make_ctx({});
  FpEnv env = ctx.fn(test_fn());
  const double a = 1.0 + 1e-15, b = 1.0 - 1e-15, c = -1.0;
  EXPECT_EQ(env.mul_add(a, b, c), a * b + c);
}

TEST(EnvScalarOps, MulAddContractsToFma) {
  FpSemantics sem;
  sem.contract_fma = true;
  EvalContext ctx = make_ctx(sem);
  FpEnv env = ctx.fn(test_fn());
  const double a = 1.0 + 1e-15, b = 1.0 - 1e-15, c = -1.0;
  EXPECT_EQ(env.mul_add(a, b, c), std::fma(a, b, c));
  // The classic case where contraction changes the value.
  EXPECT_NE(env.mul_add(a, b, c), a * b + c);
}

TEST(EnvScalarOps, UnsafeDivisionUsesReciprocal) {
  FpSemantics sem;
  sem.unsafe_math = true;
  EvalContext ctx = make_ctx(sem);
  FpEnv env = ctx.fn(test_fn());
  EXPECT_EQ(env.div(2.0, 3.0), 2.0 * (1.0 / 3.0));
  // Reciprocal rounding differs from direct division for some pairs.
  int differing = 0;
  for (double x : {3.0, 7.0, 10.0, 11.0, 13.0}) {
    for (double y : {7.0, 49.0, 81.0, 1.3, 2.7}) {
      if (env.div(x, y) != x / y) ++differing;
    }
  }
  EXPECT_GT(differing, 0);
}

TEST(EnvScalarOps, UnsafeSqrtIsCloseButNotExact) {
  FpSemantics sem;
  sem.unsafe_math = true;
  EvalContext ctx = make_ctx(sem);
  FpEnv env = ctx.fn(test_fn());
  int differing = 0;
  for (double x : {2.0, 3.0, 5.0, 7.0, 11.0, 0.3, 123.456}) {
    const double approx = env.sqrt(x);
    EXPECT_NEAR(approx, std::sqrt(x), 1e-11 * std::sqrt(x)) << x;
    if (approx != std::sqrt(x)) ++differing;
  }
  EXPECT_GT(differing, 0);  // it is an approximation, not a relabeling
  EXPECT_EQ(env.sqrt(0.0), 0.0);
}

TEST(EnvScalarOps, FastLibmIsLowAccuracy) {
  FpSemantics sem;
  sem.fast_libm = true;
  EvalContext ctx = make_ctx(sem);
  FpEnv env = ctx.fn(test_fn());
  EXPECT_NEAR(env.exp(1.0), std::exp(1.0), 1e-6);
  EXPECT_NE(env.exp(1.0), std::exp(1.0));
  EXPECT_NEAR(env.sin(1.0), std::sin(1.0), 1e-6);
  EXPECT_NE(env.sin(1.0), std::sin(1.0));
}

TEST(EnvScalarOps, UnsafePowGoesThroughExpLog) {
  FpSemantics sem;
  sem.unsafe_math = true;
  EvalContext ctx = make_ctx(sem);
  FpEnv env = ctx.fn(test_fn());
  const double v = env.pow(1.7, 2.3);
  EXPECT_NEAR(v, std::pow(1.7, 2.3), 1e-10);
}

TEST(EnvScalarOps, FlushSubnormalsToZero) {
  FpSemantics sem;
  sem.flush_subnormals = true;
  EvalContext ctx = make_ctx(sem);
  FpEnv env = ctx.fn(test_fn());
  const double tiny = 1e-310;  // subnormal
  EXPECT_EQ(env.mul(tiny, 0.5), 0.0);
  EXPECT_EQ(env.mul(-tiny, 0.5), 0.0);
  EXPECT_TRUE(std::signbit(env.mul(-tiny, 0.5)));
  // Normal results untouched.
  EXPECT_EQ(env.mul(2.0, 3.0), 6.0);
}

std::vector<double> ramp(std::size_t n) {
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = 0.1 * static_cast<double>(i + 1) + 1.0 / (i + 3.0);
  }
  return v;
}

TEST(EnvReductions, StrictSumIsLeftToRight) {
  EvalContext ctx = make_ctx({});
  FpEnv env = ctx.fn(test_fn());
  const auto v = ramp(101);
  double expect = 0.0;
  for (double x : v) expect += x;
  EXPECT_EQ(env.sum(v), expect);
}

TEST(EnvReductions, ReassociationChangesSum) {
  FpSemantics sem;
  sem.reassoc_width = 4;
  EvalContext ctx = make_ctx(sem);
  FpEnv env = ctx.fn(test_fn());
  const auto v = ramp(101);
  double strict = 0.0;
  for (double x : v) strict += x;
  const double lanes = env.sum(v);
  EXPECT_NE(lanes, strict);
  EXPECT_NEAR(lanes, strict, 1e-10 * std::fabs(strict));
}

class ReassocWidthTest : public ::testing::TestWithParam<int> {};

TEST_P(ReassocWidthTest, MatchesExplicitLaneModel) {
  const int w = GetParam();
  FpSemantics sem;
  sem.reassoc_width = w;
  EvalContext ctx = make_ctx(sem);
  FpEnv env = ctx.fn(test_fn());
  const auto v = ramp(57);
  std::vector<double> acc(static_cast<std::size_t>(w), 0.0);
  for (std::size_t i = 0; i < v.size(); ++i) {
    acc[i % static_cast<std::size_t>(w)] += v[i];
  }
  double expect = 0.0;
  for (double a : acc) expect += a;
  EXPECT_EQ(env.sum(v), expect);
}

INSTANTIATE_TEST_SUITE_P(Widths, ReassocWidthTest,
                         ::testing::Values(1, 2, 3, 4, 8));

TEST(EnvReductions, ExtendedPrecisionSumDiffersAndIsMoreAccurate) {
  FpSemantics sem;
  sem.extended_precision = true;
  EvalContext ctx = make_ctx(sem);
  FpEnv env = ctx.fn(test_fn());
  // A sum with heavy cancellation: extended precision keeps more bits.
  std::vector<double> v;
  for (int i = 0; i < 50; ++i) {
    v.push_back(1e16);
    v.push_back(1.0);
    v.push_back(-1e16);
  }
  double strict = 0.0;
  for (double x : v) strict += x;
  const double wide = env.sum(v);
  EXPECT_NE(wide, strict);
  EXPECT_EQ(wide, 50.0);  // exact in 80-bit accumulation
}

TEST(EnvReductions, DotWithFmaDiffersFromStrict) {
  const auto a = ramp(64);
  const auto b = ramp(64);
  EvalContext strict_ctx = make_ctx({});
  FpSemantics sem;
  sem.contract_fma = true;
  EvalContext fma_ctx = make_ctx(sem);
  const double ds = strict_ctx.fn(test_fn()).dot(a, b);
  const double df = fma_ctx.fn(test_fn()).dot(a, b);
  EXPECT_NE(ds, df);
  EXPECT_NEAR(ds, df, 1e-12 * std::fabs(ds));
}

TEST(EnvReductions, DotStrictMatchesManual) {
  const auto a = ramp(33);
  const auto b = ramp(33);
  EvalContext ctx = make_ctx({});
  double expect = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) expect += a[i] * b[i];
  EXPECT_EQ(ctx.fn(test_fn()).dot(a, b), expect);
}

TEST(EnvBulkOps, AxpyAndScalMatchManual) {
  EvalContext ctx = make_ctx({});
  FpEnv env = ctx.fn(test_fn());
  auto x = ramp(17);
  auto y = ramp(17);
  auto y2 = y;
  env.axpy(0.5, x, y);
  for (std::size_t i = 0; i < x.size(); ++i) y2[i] = 0.5 * x[i] + y2[i];
  EXPECT_EQ(y, y2);
  env.scal(2.0, y);
  for (auto& v : y2) v *= 2.0;
  EXPECT_EQ(y, y2);
}

TEST(EnvBulkOps, Norm2MatchesSqrtDot) {
  EvalContext ctx = make_ctx({});
  const auto v = ramp(29);
  const double n = ctx.fn(test_fn()).norm2(v);
  double dd = 0.0;
  for (double x : v) dd += x * x;
  EXPECT_EQ(n, std::sqrt(dd));
}

TEST(EnvDeterminism, SameSemanticsSameResult) {
  FpSemantics sem;
  sem.contract_fma = true;
  sem.reassoc_width = 4;
  sem.unsafe_math = true;
  const auto v = ramp(200);
  EvalContext c1 = make_ctx(sem);
  EvalContext c2 = make_ctx(sem);
  EXPECT_EQ(c1.fn(test_fn()).sum(v), c2.fn(test_fn()).sum(v));
  EXPECT_EQ(c1.fn(test_fn()).dot(v, v), c2.fn(test_fn()).dot(v, v));
}

TEST(EnvCost, OpsAreTalliedWithTimeScale) {
  EvalContext ctx = make_ctx({}, CostFactors{2.0, 1.0});
  FpEnv env = ctx.fn(test_fn());
  (void)env.add(1.0, 2.0);
  EXPECT_EQ(ctx.counter().count(OpClass::Add), 1u);
  EXPECT_DOUBLE_EQ(ctx.counter().cycles(), OpCosts::kAdd * 2.0);
  (void)env.div(1.0, 3.0);
  EXPECT_DOUBLE_EQ(ctx.counter().cycles(),
                   (OpCosts::kAdd + OpCosts::kDiv) * 2.0);
}

TEST(EnvCost, BulkOpsScaleWithVectorWidth) {
  EvalContext narrow = make_ctx({}, CostFactors{1.0, 1.0});
  EvalContext wide = make_ctx({}, CostFactors{1.0, 4.0});
  const auto v = ramp(64);
  (void)narrow.fn(test_fn()).sum(v);
  (void)wide.fn(test_fn()).sum(v);
  EXPECT_DOUBLE_EQ(narrow.counter().cycles(), 64.0 * OpCosts::kAdd);
  EXPECT_DOUBLE_EQ(wide.counter().cycles(), 64.0 * OpCosts::kAdd / 4.0);
}

TEST(EnvCost, UnsafeDivIsNotMoreExpensive) {
  // Reciprocal division's latency win is absorbed by memory-bound kernels:
  // the model charges it no more than a precise division.
  EvalContext strict_ctx = make_ctx({});
  FpSemantics sem;
  sem.unsafe_math = true;
  EvalContext fast_ctx = make_ctx(sem);
  (void)strict_ctx.fn(test_fn()).div(1.0, 3.0);
  (void)fast_ctx.fn(test_fn()).div(1.0, 3.0);
  EXPECT_LE(fast_ctx.counter().cycles(), strict_ctx.counter().cycles());
}

TEST(EnvCost, FastLibmIsCheaper) {
  EvalContext strict_ctx = make_ctx({});
  FpSemantics sem;
  sem.fast_libm = true;
  EvalContext fast_ctx = make_ctx(sem);
  (void)strict_ctx.fn(test_fn()).exp(1.0);
  (void)fast_ctx.fn(test_fn()).exp(1.0);
  EXPECT_LT(fast_ctx.counter().cycles(), strict_ctx.counter().cycles());
}

TEST(EnvSemantics, StrictPredicate) {
  EXPECT_TRUE(FpSemantics{}.strict());
  FpSemantics s;
  s.contract_fma = true;
  EXPECT_FALSE(s.strict());
  s = {};
  s.reassoc_width = 2;
  EXPECT_FALSE(s.strict());
}

}  // namespace
