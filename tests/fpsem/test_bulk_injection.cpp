// Injection probing inside the bulk kernels: a reduction or elementwise
// loop is ONE static instruction site (recorded once), but an armed
// injection perturbs every dynamic element passing through it -- the
// LLVM-pass behaviour of Sec. 3.5 for vectorized loops.

#include <gtest/gtest.h>

#include "fpsem/env.h"
#include "fpsem/injection_hook.h"

namespace {

using namespace flit::fpsem;

FunctionId bulk_fn() {
  static const FunctionId id = register_fn({
      .name = "test::bulk_fn",
      .file = "test/bulk_injection.cpp",
  });
  return id;
}

EvalContext make_ctx() {
  (void)bulk_fn();
  return EvalContext(SemanticsMap(global_code_model().function_count()));
}

std::vector<double> data(std::size_t n) {
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = 1.0 + 0.5 * i;
  return v;
}

struct BulkResult {
  double sum, dot;
  std::vector<double> axpy;
};

BulkResult run_all(InjectionHook* hook) {
  EvalContext ctx = make_ctx();
  if (hook != nullptr) ctx.set_injection_hook(hook);
  FpEnv env = ctx.fn(bulk_fn());
  const auto v = data(8);
  BulkResult r;
  r.sum = env.sum(v);        // site 1
  r.dot = env.dot(v, v);     // site 2
  r.axpy = v;
  env.axpy(2.0, v, r.axpy);  // site 3
  return r;
}

TEST(BulkInjection, EachBulkKernelIsOneStaticSite) {
  auto rec = InjectionHook::recorder();
  (void)run_all(&rec);
  EXPECT_EQ(rec.sites().size(), 3u);
}

TEST(BulkInjection, ArmedSitePerturbsEveryElement) {
  auto rec = InjectionHook::recorder();
  (void)run_all(&rec);
  const auto sites = rec.sites();
  ASSERT_EQ(sites.size(), 3u);
  const BulkResult clean = run_all(nullptr);

  // Arm the sum site with +1 per element: total grows by exactly n.
  auto inj = InjectionHook::injector(sites[0], InjectOp::Add, 1.0);
  const BulkResult sum_injected = run_all(&inj);
  EXPECT_EQ(inj.hits(), 8u);  // one perturbation per dynamic element
  EXPECT_DOUBLE_EQ(sum_injected.sum, clean.sum + 8.0);
  EXPECT_EQ(sum_injected.dot, clean.dot);    // other sites untouched
  EXPECT_EQ(sum_injected.axpy, clean.axpy);
}

TEST(BulkInjection, DotPerturbationScalesWithOperand) {
  auto rec = InjectionHook::recorder();
  (void)run_all(&rec);
  const auto sites = rec.sites();
  const BulkResult clean = run_all(nullptr);

  auto inj = InjectionHook::injector(sites[1], InjectOp::Mul, 0.5);
  const BulkResult injected = run_all(&inj);
  EXPECT_EQ(injected.sum, clean.sum);
  EXPECT_NEAR(injected.dot, 0.5 * clean.dot, 1e-12);
}

TEST(BulkInjection, AxpyPerturbationHitsEveryOutputEntry) {
  auto rec = InjectionHook::recorder();
  (void)run_all(&rec);
  const auto sites = rec.sites();
  const BulkResult clean = run_all(nullptr);

  auto inj = InjectionHook::injector(sites[2], InjectOp::Add, 0.25);
  const BulkResult injected = run_all(&inj);
  ASSERT_EQ(injected.axpy.size(), clean.axpy.size());
  for (std::size_t i = 0; i < clean.axpy.size(); ++i) {
    // y[i] = 2*(x[i]+0.25) + y0[i] = clean + 0.5
    EXPECT_NEAR(injected.axpy[i], clean.axpy[i] + 0.5, 1e-12) << i;
  }
}

}  // namespace
