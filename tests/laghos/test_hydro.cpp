// mini-Laghos: physics sanity, determinism, and the two historical bugs.

#include <cmath>

#include <gtest/gtest.h>

#include "laghos/hydro.h"
#include "toolchain/semantics_rules.h"

namespace {

using namespace flit;
using laghos::HydroOptions;
using laghos::HydroState;

fpsem::EvalContext uniform(fpsem::FpSemantics sem) {
  return fpsem::uniform_context(fpsem::FnBinding{sem, {}});
}

fpsem::FpSemantics xlc_o3_sem() {
  return toolchain::derive_semantics(toolchain::laghos_variable_xlc());
}
fpsem::FpSemantics xlc_o2_sem() {
  return toolchain::derive_semantics(toolchain::laghos_trusted_xlc());
}

TEST(LaghosState, SodInitialCondition) {
  const HydroState s = laghos::initial_state(40);
  EXPECT_EQ(s.x.size(), 41u);
  EXPECT_EQ(s.e.size(), 40u);
  EXPECT_GT(s.rho[0], s.rho[39]);  // high-density left half
  EXPECT_GT(s.e[0], s.e[39]);
  double mass = 0.0;
  for (double m : s.m) mass += m;
  EXPECT_NEAR(mass, 0.5 * (1.0 + 0.125), 1e-12);
}

TEST(LaghosPhysics, EosPressureIsIdealGas) {
  auto ctx = fpsem::strict_context();
  std::vector<double> rho{1.0, 2.0}, e{2.5, 1.0}, p;
  laghos::eos_pressure(ctx, 1.4, rho, e, p);
  EXPECT_NEAR(p[0], 0.4 * 2.5, 1e-15);
  EXPECT_NEAR(p[1], 0.4 * 2.0, 1e-15);
}

TEST(LaghosPhysics, SoundSpeedIsSqrtGammaPOverRho) {
  auto ctx = fpsem::strict_context();
  std::vector<double> p{1.4}, rho{1.4}, cs;
  laghos::sound_speed(ctx, 1.4, p, rho, cs);
  EXPECT_NEAR(cs[0], std::sqrt(1.4), 1e-15);
}

TEST(LaghosPhysics, SimulationConservesMassAndStaysFinite) {
  auto ctx = fpsem::strict_context();
  const HydroState s = laghos::simulate(ctx, {});
  for (double e : s.e) {
    EXPECT_TRUE(std::isfinite(e));
    EXPECT_GT(e, 0.0);
  }
  // Lagrangian masses are invariant; density follows geometry.
  for (std::size_t z = 0; z < s.e.size(); ++z) {
    const double dx = s.x[z + 1] - s.x[z];
    EXPECT_NEAR(s.rho[z] * dx, s.m[z], 1e-12) << z;
  }
  EXPECT_GT(s.t, 0.0);
}

TEST(LaghosPhysics, ShockMovesRight) {
  auto ctx = fpsem::strict_context();
  HydroOptions opts;
  opts.steps = 60;
  const HydroState s = laghos::simulate(ctx, opts);
  // The contact/shock pushes mass into the right half: some right-half
  // zone must have compressed noticeably above its initial density.
  double max_right_rho = 0.0;
  for (std::size_t z = s.e.size() / 2; z < s.e.size(); ++z) {
    max_right_rho = std::max(max_right_rho, s.rho[z]);
  }
  EXPECT_GT(max_right_rho, 0.15);
}

TEST(LaghosPhysics, DeterministicUnderEverySemantics) {
  for (const auto& sem : {fpsem::FpSemantics{}, xlc_o2_sem(), xlc_o3_sem()}) {
    auto c1 = uniform(sem);
    auto c2 = uniform(sem);
    HydroOptions opts;
    opts.epsilon_zero_compare = true;
    const double n1 = laghos::energy_norm(c1, laghos::simulate(c1, opts));
    const double n2 = laghos::energy_norm(c2, laghos::simulate(c2, opts));
    EXPECT_EQ(n1, n2);
  }
}

TEST(LaghosBugs, XorSwapMakesEverythingNanUnderUbOptimizer) {
  auto ctx = uniform(xlc_o3_sem());
  HydroOptions opts;
  opts.use_xor_swap_bug = true;
  const HydroState s = laghos::simulate(ctx, opts);
  EXPECT_TRUE(std::isnan(s.last_dt));
  // A strict compilation of the same buggy source behaves fine (the UB is
  // only "exploited" by the aggressive optimizer).
  auto strict = fpsem::strict_context();
  const HydroState ok = laghos::simulate(strict, opts);
  EXPECT_FALSE(std::isnan(ok.last_dt));
}

TEST(LaghosBugs, MinMaxReduceBehaveWithoutTheBug) {
  auto ctx = fpsem::strict_context();
  EXPECT_EQ(laghos::min_reduce(ctx, {3.0, 1.0, 2.0}, false), 1.0);
  EXPECT_EQ(laghos::max_reduce(ctx, {3.0, 1.0, 2.0}, false), 3.0);
  EXPECT_EQ(laghos::min_reduce(ctx, {3.0, 1.0, 2.0}, true), 1.0);
}

TEST(LaghosBugs, ZeroCompareBranchAmplifiesVariability) {
  // With the exact == 0.0 compare, a value-unsafe compilation diverges
  // macroscopically; with the epsilon fix it stays close to trusted --
  // exactly the Sec. 3.4 story.
  const auto norm_under = [&](fpsem::FpSemantics sem, bool fixed) {
    auto ctx = uniform(sem);
    HydroOptions opts;
    opts.epsilon_zero_compare = fixed;
    return laghos::energy_norm(ctx, laghos::simulate(ctx, opts));
  };
  const double trusted = norm_under(xlc_o2_sem(), false);
  const double buggy_o3 = norm_under(xlc_o3_sem(), false);
  const double fixed_trusted = norm_under(xlc_o2_sem(), true);
  const double fixed_o3 = norm_under(xlc_o3_sem(), true);

  const double rel_buggy = std::fabs(buggy_o3 - trusted) / trusted;
  const double rel_fixed = std::fabs(fixed_o3 - fixed_trusted) / fixed_trusted;
  EXPECT_GT(rel_buggy, 1e-3);             // macroscopic divergence
  EXPECT_LT(rel_fixed, rel_buggy / 10.0); // the fix tames it
}

TEST(LaghosBugs, O3IsMuchFasterThanO2) {
  // The motivating observation: xlc -O3 ran Laghos ~2.4x faster than -O2.
  const auto cycles_under = [&](const toolchain::Compilation& c) {
    auto ctx = fpsem::uniform_context(fpsem::FnBinding{
        toolchain::derive_semantics(c), toolchain::derive_cost(c)});
    (void)laghos::simulate(ctx, {});
    return ctx.counter().cycles();
  };
  const double o2 = cycles_under(toolchain::laghos_trusted_xlc());
  const double o3 = cycles_under(toolchain::laghos_variable_xlc());
  EXPECT_GT(o2 / o3, 1.8);
  EXPECT_LT(o2 / o3, 3.5);
}

TEST(LaghosAdapter, CompareHandlesNan) {
  laghos::LaghosTest t;
  const long double nan = std::numeric_limits<long double>::quiet_NaN();
  EXPECT_EQ(t.compare(nan, nan), 0.0L);
  EXPECT_EQ(t.compare(1.0L, nan), HUGE_VALL);
  EXPECT_EQ(t.compare(1.0L, 1.5L), 0.5L);
}

TEST(LaghosAdapter, SourceFilesMatchTheModel) {
  const auto files = laghos::laghos_source_files();
  EXPECT_EQ(files.size(), 4u);
  for (const auto& f : files) {
    EXPECT_FALSE(fpsem::global_code_model().functions_in(f).empty()) << f;
  }
}

}  // namespace
