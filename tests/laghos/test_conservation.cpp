// Physical invariants of the mini-Laghos scheme, checked across
// compilations: Lagrangian mass conservation is exact, total energy
// (internal + kinetic) is conserved up to the viscosity/floor dissipation
// budget, and the domain stays ordered (no tangled mesh).

#include <cmath>

#include <gtest/gtest.h>

#include "laghos/hydro.h"
#include "toolchain/semantics_rules.h"

namespace {

using namespace flit;
using laghos::HydroOptions;
using laghos::HydroState;

double total_internal(const HydroState& s) {
  double e = 0.0;
  for (std::size_t z = 0; z < s.e.size(); ++z) e += s.m[z] * s.e[z];
  return e;
}

double total_kinetic(const HydroState& s) {
  double k = 0.0;
  for (std::size_t i = 0; i < s.v.size(); ++i) {
    double nm = 0.0;
    if (i > 0) nm += 0.5 * s.m[i - 1];
    if (i < s.m.size()) nm += 0.5 * s.m[i];
    k += 0.5 * nm * s.v[i] * s.v[i];
  }
  return k;
}

class LaghosSemanticsTest
    : public ::testing::TestWithParam<toolchain::Compilation> {};

TEST_P(LaghosSemanticsTest, MassIsExactlyConserved) {
  auto ctx = fpsem::uniform_context(
      fpsem::FnBinding{toolchain::derive_semantics(GetParam()), {}});
  HydroOptions opts;
  opts.steps = 200;
  const HydroState s = laghos::simulate(ctx, opts);
  // Lagrangian masses never change; rho * dx must reproduce them.
  for (std::size_t z = 0; z < s.e.size(); ++z) {
    EXPECT_NEAR(s.rho[z] * (s.x[z + 1] - s.x[z]), s.m[z], 1e-12) << z;
  }
}

TEST_P(LaghosSemanticsTest, MeshStaysOrdered) {
  auto ctx = fpsem::uniform_context(
      fpsem::FnBinding{toolchain::derive_semantics(GetParam()), {}});
  HydroOptions opts;
  opts.steps = 400;
  const HydroState s = laghos::simulate(ctx, opts);
  for (std::size_t i = 0; i + 1 < s.x.size(); ++i) {
    EXPECT_LT(s.x[i], s.x[i + 1]) << "tangled mesh at node " << i;
  }
}

TEST_P(LaghosSemanticsTest, TotalEnergyStaysBounded) {
  auto ctx = fpsem::uniform_context(
      fpsem::FnBinding{toolchain::derive_semantics(GetParam()), {}});
  HydroOptions opts;
  opts.steps = 300;
  const HydroState initial = laghos::initial_state(opts.zones);
  const HydroState s = laghos::simulate(ctx, opts);
  const double e0 = total_internal(initial);  // starts at rest
  const double e1 = total_internal(s) + total_kinetic(s);
  // Fixed walls do no work; the explicit scheme and the viscosity floor
  // exchange a bounded fraction of the budget.
  EXPECT_GT(e1, 0.5 * e0);
  EXPECT_LT(e1, 1.5 * e0);
}

INSTANTIATE_TEST_SUITE_P(
    Compilations, LaghosSemanticsTest,
    ::testing::Values(toolchain::laghos_trusted_gcc(),
                      toolchain::laghos_trusted_xlc(),
                      toolchain::laghos_variable_xlc(),
                      toolchain::laghos_strict_xlc()),
    [](const auto& info) {
      std::string n = info.param.str();
      for (char& c : n) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return n;
    });

TEST(LaghosConservation, PressureDrivesVelocityTowardTheLowSide) {
  auto ctx = fpsem::strict_context();
  HydroOptions opts;
  opts.steps = 5;
  const HydroState s = laghos::simulate(ctx, opts);
  // The diaphragm node (middle) must have started moving right.
  EXPECT_GT(s.v[s.e.size() / 2], 0.0);
}

}  // namespace
