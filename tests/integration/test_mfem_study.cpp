// Integration: the full FLiT pipeline over mini-MFEM examples -- space
// exploration on a reduced compilation set, hierarchical bisect of found
// variability, and the headline paper shapes on a sampled space.

#include <gtest/gtest.h>

#include "core/explorer.h"
#include "core/hierarchy.h"
#include "core/workflow.h"
#include "mfemini/examples.h"
#include "toolchain/semantics_rules.h"

namespace {

using namespace flit;
using toolchain::Compilation;
using toolchain::OptLevel;

std::vector<Compilation> small_space() {
  return {
      {toolchain::gcc(), OptLevel::O0, ""},
      {toolchain::gcc(), OptLevel::O2, ""},
      {toolchain::gcc(), OptLevel::O3, ""},
      {toolchain::gcc(), OptLevel::O2, "-mavx"},
      {toolchain::gcc(), OptLevel::O2, "-mavx2 -mfma"},
      {toolchain::gcc(), OptLevel::O2, "-funsafe-math-optimizations"},
      {toolchain::clang(), OptLevel::O3, ""},
      {toolchain::clang(), OptLevel::O3, "-ffast-math"},
      {toolchain::icpc(), OptLevel::O2, ""},
      {toolchain::icpc(), OptLevel::O2, "-fp-model precise"},
  };
}

core::StudyResult explore(int example) {
  mfemini::MfemExampleTest t(example);
  core::SpaceExplorer explorer(&fpsem::global_code_model(),
                               toolchain::mfem_baseline(),
                               toolchain::mfem_speed_reference());
  const auto space = small_space();
  return explorer.explore(t, space);
}

TEST(MfemStudy, PlainGccCompilationsAreBitwiseEqual) {
  const auto r = explore(1);
  EXPECT_TRUE(r.outcomes[0].bitwise_equal());  // g++ -O0 (the baseline)
  EXPECT_TRUE(r.outcomes[1].bitwise_equal());  // g++ -O2
  EXPECT_TRUE(r.outcomes[2].bitwise_equal());  // g++ -O3
  EXPECT_TRUE(r.outcomes[3].bitwise_equal());  // -mavx does not change values
}

TEST(MfemStudy, FmaAndUnsafeCompilationsAreVariableOnExample1) {
  const auto r = explore(1);
  EXPECT_FALSE(r.outcomes[4].bitwise_equal());  // -mavx2 -mfma
  EXPECT_FALSE(r.outcomes[5].bitwise_equal());  // -funsafe-math
  EXPECT_FALSE(r.outcomes[7].bitwise_equal());  // clang -ffast-math
}

TEST(MfemStudy, IntelIsVariableEvenUnderPreciseModelOnLibmExamples) {
  // The link step substitutes fast libm regardless of switches (Fig. 5).
  const auto r = explore(5);
  EXPECT_FALSE(r.outcomes[8].bitwise_equal());  // icpc -O2
  EXPECT_FALSE(r.outcomes[9].bitwise_equal());  // icpc -fp-model precise
}

TEST(MfemStudy, InvariantExamplesHaveNoVariableCompilations) {
  for (int idx : {12, 18}) {
    const auto r = explore(idx);
    EXPECT_EQ(r.variable_count(), 0u) << "example " << idx;
  }
}

TEST(MfemStudy, HigherOptLevelsAreFaster) {
  const auto r = explore(2);
  EXPECT_GT(r.outcomes[2].speedup, r.outcomes[1].speedup);  // O3 > O2
  EXPECT_NEAR(r.outcomes[1].speedup, 1.0, 1e-9);  // O2 is the reference
  EXPECT_LT(r.outcomes[0].speedup, 0.5);          // O0 is far slower
}

TEST(MfemStudy, BisectRootCausesExample13ToAddMultAAt) {
  mfemini::MfemExampleTest t(13);
  core::BisectConfig cfg;
  cfg.baseline = toolchain::mfem_baseline();
  cfg.variable = {toolchain::gcc(), OptLevel::O2, "-mavx2 -mfma"};
  cfg.scope = mfemini::mfem_source_files();
  core::BisectDriver driver(&fpsem::global_code_model(), &t, cfg);
  const auto out = driver.run();
  ASSERT_FALSE(out.crashed) << out.crash_reason;
  ASSERT_FALSE(out.findings.empty());
  // The dominant culprit file is the dense matrix kernel file.
  EXPECT_EQ(out.findings[0].file, "linalg/densemat.cpp");
  if (out.findings[0].status == core::FileFinding::SymbolStatus::Found) {
    ASSERT_FALSE(out.findings[0].symbols.empty());
    // AddMult_aAAt (or the MatMul that feeds it) tops the blame list.
    const std::string& top = out.findings[0].symbols[0].symbol;
    EXPECT_TRUE(top == "DenseMatrix::AddMult_aAAt" ||
                top == "DenseMatrix::MatMul")
        << top;
  }
}

TEST(MfemStudy, BisectExecutionCountIsLogarithmicNotLinear) {
  mfemini::MfemExampleTest t(13);
  core::BisectConfig cfg;
  cfg.baseline = toolchain::mfem_baseline();
  cfg.variable = {toolchain::gcc(), OptLevel::O2, "-mavx2 -mfma"};
  cfg.scope = mfemini::mfem_source_files();
  cfg.k = 1;
  core::BisectDriver driver(&fpsem::global_code_model(), &t, cfg);
  const auto out = driver.run();
  ASSERT_FALSE(out.crashed);
  // The paper reports ~30 average executions on MFEM; our model is smaller.
  EXPECT_LE(out.executions, 60);
}

TEST(MfemStudy, WorkflowRecommendsAReproducibleCompilation) {
  mfemini::MfemExampleTest t(5);
  core::WorkflowOptions opts;
  opts.baseline = toolchain::mfem_baseline();
  opts.speed_reference = toolchain::mfem_speed_reference();
  opts.run_bisect = false;
  const auto space = small_space();
  const auto report =
      core::run_workflow(&fpsem::global_code_model(), t, space, opts);
  ASSERT_NE(report.fastest_reproducible, nullptr);
  EXPECT_TRUE(report.fastest_reproducible->bitwise_equal());
  EXPECT_EQ(report.fastest_reproducible->comp.compiler.family,
            toolchain::CompilerFamily::GCC);
}

}  // namespace
