// The Sec. 3.4 Laghos case study end-to-end: Bisect re-discovers the NaN
// (XOR-swap) bug and root-causes the zero-compare variability, with run
// counts in the paper's range (Table 4).

#include <gtest/gtest.h>

#include "core/hierarchy.h"
#include "laghos/hydro.h"
#include "toolchain/semantics_rules.h"

namespace {

using namespace flit;
using laghos::HydroOptions;
using laghos::LaghosTest;

core::HierarchicalOutcome run_bisect(const LaghosTest& test,
                                     const toolchain::Compilation& baseline,
                                     int k, int digits) {
  core::BisectConfig cfg;
  cfg.baseline = baseline;
  cfg.variable = toolchain::laghos_variable_xlc();
  cfg.scope = laghos::laghos_source_files();
  cfg.k = k;
  cfg.digits = digits;
  core::BisectDriver driver(&fpsem::global_code_model(), &test, cfg);
  return driver.run();
}

TEST(LaghosBisect, RediscoversTheXorSwapNanBug) {
  HydroOptions opts;
  opts.use_xor_swap_bug = true;
  LaghosTest test(opts);
  const auto out =
      run_bisect(test, toolchain::laghos_trusted_xlc(), /*k=*/0, /*digits=*/0);
  ASSERT_FALSE(out.crashed) << out.crash_reason;
  ASSERT_FALSE(out.findings.empty());
  // The NaN originates in the CFL path through the utility sorters.
  bool found_utils = false;
  for (const auto& ff : out.findings) {
    if (ff.file == "laghos/utils.cpp") {
      found_utils = true;
      if (ff.status == core::FileFinding::SymbolStatus::Found) {
        // Both visible symbols built on the macro are implicated.
        std::vector<std::string> syms;
        for (const auto& sf : ff.symbols) syms.push_back(sf.symbol);
        EXPECT_NE(std::find(syms.begin(), syms.end(), "Utils::MinReduce"),
                  syms.end());
      }
    }
  }
  EXPECT_TRUE(found_utils);
  EXPECT_LE(out.executions, 60);  // the paper's rediscovery took 45 runs
}

TEST(LaghosBisect, K1FindsTheDominantFunctionInFewRuns) {
  HydroOptions opts;  // xsw fixed, zero-compare bug present
  LaghosTest test(opts);
  const auto out =
      run_bisect(test, toolchain::laghos_trusted_xlc(), /*k=*/1, /*digits=*/0);
  ASSERT_FALSE(out.crashed) << out.crash_reason;
  ASSERT_FALSE(out.findings.empty());
  EXPECT_LE(out.executions, 25);  // Table 4: 14-18 runs at k=1
  // The dominant culprit is the viscosity kernel's file.
  EXPECT_EQ(out.findings[0].file, "laghos/qupdate.cpp");
}

TEST(LaghosBisect, DigitRestrictedComparisonsStillRootCause) {
  HydroOptions opts;
  LaghosTest test(opts);
  for (int digits : {2, 3, 5}) {
    const auto out = run_bisect(test, toolchain::laghos_trusted_gcc(),
                                /*k=*/1, digits);
    ASSERT_FALSE(out.crashed) << out.crash_reason;
    ASSERT_FALSE(out.findings.empty()) << "digits=" << digits;
    EXPECT_EQ(out.findings[0].file, "laghos/qupdate.cpp")
        << "digits=" << digits;
  }
}

TEST(LaghosBisect, AllModeFindsMoreCulpritsThanK1) {
  HydroOptions opts;
  LaghosTest test(opts);
  const auto k1 =
      run_bisect(test, toolchain::laghos_trusted_xlc(), /*k=*/1, 0);
  const auto all =
      run_bisect(test, toolchain::laghos_trusted_xlc(), /*k=*/0, 0);
  ASSERT_FALSE(all.crashed) << all.crash_reason;
  EXPECT_GE(all.findings.size(), k1.findings.size());
  EXPECT_GT(all.executions, k1.executions);  // Table 4: 57-69 vs 14 runs
}

TEST(LaghosBisect, StrictVectorPrecisionBaselineAgreesWithO2) {
  // xlc++ -O3 -qstrict=vectorprecision is one of the trusted baselines of
  // Table 4: against the xlc++ -O2 trusted result it only differs by FMA-
  // level noise, never by the branch-flip magnitude.
  LaghosTest test(HydroOptions{});
  auto run_norm = [&](const toolchain::Compilation& c) {
    auto ctx = fpsem::uniform_context(
        fpsem::FnBinding{toolchain::derive_semantics(c), {}});
    return std::get<long double>(test.run_impl({}, ctx));
  };
  const long double o2 = run_norm(toolchain::laghos_trusted_xlc());
  const long double strict = run_norm(toolchain::laghos_strict_xlc());
  const long double o3 = run_norm(toolchain::laghos_variable_xlc());
  EXPECT_LT(fabsl(strict - o2) / o2, 1e-6);
  EXPECT_GT(fabsl(o3 - o2) / o2, 1e-4);
}

}  // namespace
