// Integration: the parallel study engine over mini-MFEM.  Parallel
// explore() and run_workflow() must be bitwise-identical to serial at any
// jobs count, the shared compilation cache must stay invisible in the
// results while absorbing most compiles of the Table 1 space, and the
// workflow's bisect fan-out must preserve every finding.

#include <gtest/gtest.h>

#include "core/explorer.h"
#include "core/workflow.h"
#include "mfemini/examples.h"
#include "toolchain/compile_cache.h"
#include "toolchain/compiler.h"

namespace {

using namespace flit;
using toolchain::Compilation;
using toolchain::OptLevel;

std::vector<Compilation> small_space() {
  return {
      {toolchain::gcc(), OptLevel::O0, ""},
      {toolchain::gcc(), OptLevel::O2, ""},
      {toolchain::gcc(), OptLevel::O3, ""},
      {toolchain::gcc(), OptLevel::O2, "-mavx2 -mfma"},
      {toolchain::gcc(), OptLevel::O2, "-funsafe-math-optimizations"},
      {toolchain::clang(), OptLevel::O3, "-ffast-math"},
      {toolchain::icpc(), OptLevel::O2, ""},
      {toolchain::icpc(), OptLevel::O2, "-fp-model precise"},
  };
}

void expect_identical_studies(const core::StudyResult& a,
                              const core::StudyResult& b) {
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  EXPECT_EQ(a.test_name, b.test_name);
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_EQ(a.outcomes[i].comp, b.outcomes[i].comp) << i;
    // Bitwise comparisons on purpose: parallel results must be the very
    // same long doubles/doubles, not merely close.
    EXPECT_EQ(a.outcomes[i].variability, b.outcomes[i].variability) << i;
    EXPECT_EQ(a.outcomes[i].cycles, b.outcomes[i].cycles) << i;
    EXPECT_EQ(a.outcomes[i].speedup, b.outcomes[i].speedup) << i;
  }
}

TEST(ParallelStudy, ExploreIsBitwiseIdenticalAcrossJobCounts) {
  const auto space = small_space();
  mfemini::MfemExampleTest test(5);

  core::SpaceExplorer serial(&fpsem::global_code_model(),
                             toolchain::mfem_baseline(),
                             toolchain::mfem_speed_reference(), 1);
  const auto reference = serial.explore(test, space);

  for (unsigned jobs : {2u, 8u}) {
    core::SpaceExplorer parallel(&fpsem::global_code_model(),
                                 toolchain::mfem_baseline(),
                                 toolchain::mfem_speed_reference(), jobs);
    expect_identical_studies(parallel.explore(test, space), reference);
  }
}

TEST(ParallelStudy, SharedCacheDoesNotChangeOutcomes) {
  const auto space = small_space();
  mfemini::MfemExampleTest test(1);

  // An explorer whose cache was pre-warmed by a *different* example must
  // still produce the same study (cached objects carry no run state).
  core::SpaceExplorer cold(&fpsem::global_code_model(),
                           toolchain::mfem_baseline(),
                           toolchain::mfem_speed_reference());
  const auto reference = cold.explore(test, space);

  toolchain::CompilationCache shared;
  core::SpaceExplorer warm(&fpsem::global_code_model(),
                           toolchain::mfem_baseline(),
                           toolchain::mfem_speed_reference(), 2, &shared);
  mfemini::MfemExampleTest other(9);
  (void)warm.explore(other, space);
  expect_identical_studies(warm.explore(test, space), reference);
  EXPECT_GT(shared.stats().hits, 0u);
}

TEST(ParallelStudy, FullSpaceCacheHitRateExceedsHalf) {
  mfemini::MfemExampleTest test(5);
  core::SpaceExplorer explorer(&fpsem::global_code_model(),
                               toolchain::mfem_baseline(),
                               toolchain::mfem_speed_reference(), 2);
  const auto space = toolchain::mfem_study_space();
  const auto r = explorer.explore(test, space);
  EXPECT_EQ(r.outcomes.size(), space.size());
  // The acceptance bar for the Table 1 study: > 50% of per-file compiles
  // served from the cache.
  EXPECT_GT(explorer.cache().stats().hit_rate(), 0.5)
      << "hits=" << explorer.cache().stats().hits
      << " misses=" << explorer.cache().stats().misses;
}

void expect_identical_workflows(const core::WorkflowReport& a,
                                const core::WorkflowReport& b) {
  expect_identical_studies(a.study, b.study);
  ASSERT_EQ(a.bisects.size(), b.bisects.size());
  for (std::size_t i = 0; i < a.bisects.size(); ++i) {
    const auto& ba = a.bisects[i];
    const auto& bb = b.bisects[i];
    EXPECT_EQ(ba.outcome.comp, bb.outcome.comp) << i;
    EXPECT_EQ(ba.bisect.whole_value, bb.bisect.whole_value) << i;
    EXPECT_EQ(ba.bisect.executions, bb.bisect.executions) << i;
    EXPECT_EQ(ba.bisect.crashed, bb.bisect.crashed) << i;
    ASSERT_EQ(ba.bisect.findings.size(), bb.bisect.findings.size()) << i;
    for (std::size_t j = 0; j < ba.bisect.findings.size(); ++j) {
      const auto& fa = ba.bisect.findings[j];
      const auto& fb = bb.bisect.findings[j];
      EXPECT_EQ(fa.file, fb.file);
      EXPECT_EQ(fa.value, fb.value);
      EXPECT_EQ(fa.status, fb.status);
      ASSERT_EQ(fa.symbols.size(), fb.symbols.size());
      for (std::size_t s = 0; s < fa.symbols.size(); ++s) {
        EXPECT_EQ(fa.symbols[s].symbol, fb.symbols[s].symbol);
        EXPECT_EQ(fa.symbols[s].value, fb.symbols[s].value);
      }
    }
  }
}

TEST(ParallelStudy, WorkflowIsBitwiseIdenticalAcrossJobCounts) {
  mfemini::MfemExampleTest test(13);
  core::WorkflowOptions opts;
  opts.baseline = toolchain::mfem_baseline();
  opts.speed_reference = toolchain::mfem_speed_reference();
  opts.max_bisects = 3;
  opts.k = 1;
  const auto space = small_space();

  opts.jobs = 1;
  const auto reference =
      core::run_workflow(&fpsem::global_code_model(), test, space, opts);
  ASSERT_FALSE(reference.bisects.empty());

  for (unsigned jobs : {2u, 8u}) {
    opts.jobs = jobs;
    const auto parallel =
        core::run_workflow(&fpsem::global_code_model(), test, space, opts);
    expect_identical_workflows(parallel, reference);
  }
}

}  // namespace
