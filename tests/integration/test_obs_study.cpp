// Integration: the observability subsystem against the real engines.
// Telemetry must be strictly off the result path -- studies, databases and
// reports are bitwise-identical with tracing on or off, at any
// (jobs, shards) combination, with or without injected faults -- while the
// telemetry itself must be valid (Chrome JSON with monotone per-lane
// timestamps) and reconcile with the study's own accounting.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "../obs/json_check.h"
#include "core/explorer.h"
#include "core/faults.h"
#include "core/report.h"
#include "core/resultsdb.h"
#include "core/workflow.h"
#include "dist/coordinator.h"
#include "mfemini/examples.h"
#include "obs/export.h"
#include "obs/session.h"
#include "toolchain/compiler.h"

namespace {

using namespace flit;
using core::FaultInjector;
using core::FaultSite;
using toolchain::Compilation;
using toolchain::OptLevel;

namespace fs = std::filesystem;

std::vector<Compilation> small_space() {
  return {
      {toolchain::gcc(), OptLevel::O0, ""},
      {toolchain::gcc(), OptLevel::O2, ""},
      {toolchain::gcc(), OptLevel::O3, ""},
      {toolchain::gcc(), OptLevel::O2, "-mavx2 -mfma"},
      {toolchain::gcc(), OptLevel::O2, "-funsafe-math-optimizations"},
      {toolchain::clang(), OptLevel::O3, "-ffast-math"},
      {toolchain::icpc(), OptLevel::O2, ""},
      {toolchain::icpc(), OptLevel::O2, "-fp-model precise"},
  };
}

core::StudyResult run_study(const core::TestBase& test,
                            const std::vector<Compilation>& space,
                            int shards, unsigned jobs) {
  if (shards <= 1) {
    core::SpaceExplorer explorer(&fpsem::global_code_model(),
                                 toolchain::mfem_baseline(),
                                 toolchain::mfem_speed_reference(), jobs);
    return explorer.explore(test, space);
  }
  dist::ShardOptions opts;
  opts.shards = shards;
  opts.jobs = jobs;
  dist::ShardCoordinator coord(&fpsem::global_code_model(),
                               toolchain::mfem_baseline(),
                               toolchain::mfem_speed_reference(), opts);
  return coord.run(test, space).study;
}

void expect_identical_studies(const core::StudyResult& a,
                              const core::StudyResult& b,
                              const std::string& what) {
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size()) << what;
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_EQ(a.outcomes[i].comp, b.outcomes[i].comp) << what << " #" << i;
    EXPECT_EQ(a.outcomes[i].variability, b.outcomes[i].variability)
        << what << " #" << i;
    EXPECT_EQ(a.outcomes[i].cycles, b.outcomes[i].cycles) << what << " #" << i;
    EXPECT_EQ(a.outcomes[i].speedup, b.outcomes[i].speedup)
        << what << " #" << i;
    EXPECT_EQ(a.outcomes[i].status, b.outcomes[i].status) << what << " #" << i;
    EXPECT_EQ(a.outcomes[i].attempts, b.outcomes[i].attempts)
        << what << " #" << i;
    EXPECT_EQ(a.outcomes[i].reason, b.outcomes[i].reason) << what << " #" << i;
  }
}

std::string file_bytes(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Quiesces the global observability session between cases: zeroes the
/// metrics, drains the tracer, and disables tracing.
class ObsStudyTest : public ::testing::Test {
 protected:
  void SetUp() override { quiesce(); }
  void TearDown() override { quiesce(); }

  static void quiesce() {
    FaultInjector::global().disarm();
    obs::metrics().reset();
    obs::tracer().set_enabled(false);
    (void)obs::tracer().drain_sorted();
  }
};

TEST_F(ObsStudyTest, TracingDoesNotPerturbResultsAcrossJobsAndShards) {
  const auto space = small_space();
  mfemini::MfemExampleTest test(5);

  obs::tracer().set_enabled(false);
  const auto reference = run_study(test, space, 1, 1);
  const std::string reference_csv = core::study_csv(reference);

  for (int shards : {1, 2}) {
    for (unsigned jobs : {1u, 4u}) {
      obs::tracer().set_enabled(true);
      const auto traced = run_study(test, space, shards, jobs);
      (void)obs::tracer().drain_sorted();
      obs::tracer().set_enabled(false);
      const std::string what = std::to_string(shards) + " shards, " +
                               std::to_string(jobs) + " jobs";
      expect_identical_studies(traced, reference, what);
      EXPECT_EQ(core::study_csv(traced), reference_csv) << what;
    }
  }
}

TEST_F(ObsStudyTest, TracedEventContentIsIdenticalAcrossJobsCounts) {
  const auto space = small_space();
  mfemini::MfemExampleTest test(3);

  std::optional<std::vector<obs::TraceEvent>> reference;
  for (unsigned jobs : {1u, 2u, 4u}) {
    obs::tracer().set_enabled(true);
    {
      // Fresh root context per run: the caller thread's logical clock
      // starts at zero, as it does in a fresh process (one CLI run).
      obs::ScopedItem root(0, obs::kNoIndex, 0);
      (void)run_study(test, space, 1, jobs);
    }
    auto events = obs::tracer().drain_sorted();
    obs::tracer().set_enabled(false);
    ASSERT_FALSE(events.empty());
    if (!reference.has_value()) {
      reference = std::move(events);
    } else {
      EXPECT_EQ(events, *reference) << jobs << " jobs";
    }
  }
}

TEST_F(ObsStudyTest, FaultedStudiesAreIdenticalWithTracingOnAndOff) {
  const auto space = small_space();
  mfemini::MfemExampleTest test(5);

  // Deterministic seed search (the test_fault_tolerance idiom): a run
  // fault that quarantines at least one item while the anchors survive.
  std::optional<core::StudyResult> reference;
  std::uint64_t seed = 0;
  for (; seed < 100; ++seed) {
    FaultInjector::global().disarm();
    FaultInjector::global().arm(FaultSite::Run, 0.3, seed);
    try {
      auto r = run_study(test, space, 1, 1);
      if (r.failed_count() > 0) {
        reference = std::move(r);
        break;
      }
    } catch (const core::StudyAbort&) {
    }
  }
  ASSERT_TRUE(reference.has_value())
      << "no seed in [0,100) quarantined an item with live anchors";

  for (int shards : {1, 2}) {
    for (unsigned jobs : {1u, 4u}) {
      FaultInjector::global().disarm();
      FaultInjector::global().arm(FaultSite::Run, 0.3, seed);
      obs::tracer().set_enabled(true);
      const auto traced = run_study(test, space, shards, jobs);
      const auto events = obs::tracer().drain_sorted();
      obs::tracer().set_enabled(false);
      expect_identical_studies(traced, *reference,
                               std::to_string(shards) + " shards");
      EXPECT_GT(traced.failed_count(), 0u);
      EXPECT_FALSE(events.empty());
    }
  }
}

TEST_F(ObsStudyTest, DatabaseBytesAreIdenticalWithTracingOn) {
  const auto space = small_space();
  mfemini::MfemExampleTest test(5);
  const fs::path dir =
      fs::temp_directory_path() / "flit_obs_db_identity";
  fs::remove_all(dir);
  fs::create_directories(dir);

  const auto record = [&](const fs::path& p, bool traced) {
    obs::tracer().set_enabled(traced);
    core::ResultsDb db(p);
    core::SpaceExplorer explorer(&fpsem::global_code_model(),
                                 toolchain::mfem_baseline(),
                                 toolchain::mfem_speed_reference(), 2);
    core::ExploreOptions eo;
    eo.db = &db;
    eo.checkpoint_batch = 3;
    (void)explorer.explore(test, space, eo);
    (void)obs::tracer().drain_sorted();
    obs::tracer().set_enabled(false);
  };

  record(dir / "plain.tsv", false);
  record(dir / "traced.tsv", true);
  const std::string plain = file_bytes(dir / "plain.tsv");
  ASSERT_FALSE(plain.empty());
  EXPECT_EQ(file_bytes(dir / "traced.tsv"), plain);
  fs::remove_all(dir);
}

TEST_F(ObsStudyTest, ChromeExportIsValidJsonWithMonotonePerLaneTimestamps) {
  const auto space = small_space();
  mfemini::MfemExampleTest test(2);

  obs::tracer().set_enabled(true);
  (void)run_study(test, space, 2, 2);
  const auto events = obs::tracer().drain_sorted();
  obs::tracer().set_enabled(false);
  ASSERT_FALSE(events.empty());

  const std::string json = obs::chrome_trace_json(events);
  ASSERT_TRUE(flit::test::is_valid_json(json));

  // Walk every event's (tid, ts) in stream order: within a lane the
  // synthetic timeline must never step backwards.
  std::map<int, long long> last_ts;
  std::size_t pos = 0, checked = 0;
  while ((pos = json.find("\"tid\":", pos)) != std::string::npos) {
    pos += 6;
    const int tid = std::stoi(json.substr(pos));
    const std::size_t ts_pos = json.find("\"ts\":", pos);
    ASSERT_NE(ts_pos, std::string::npos);
    const long long ts = std::stoll(json.substr(ts_pos + 5));
    if (auto it = last_ts.find(tid); it != last_ts.end()) {
      ASSERT_GE(ts, it->second) << "tid " << tid;
    }
    last_ts[tid] = ts;
    pos = ts_pos;
    ++checked;
  }
  EXPECT_EQ(checked, events.size());
  EXPECT_EQ(last_ts.size(), 2u);  // one lane per shard

  // Every study item appears in the trace: one compilation span per
  // space entry.
  std::size_t compilation_spans = 0;
  for (const obs::TraceEvent& e : events) {
    if (e.name == "compilation") ++compilation_spans;
  }
  EXPECT_EQ(compilation_spans, space.size());
}

TEST_F(ObsStudyTest, MetricsReconcileWithStudyAccounting) {
  const auto space = small_space();
  mfemini::MfemExampleTest test(5);

  // Arm a quarantining configuration so every counter is exercised.
  std::uint64_t seed = 0;
  std::optional<core::StudyResult> study;
  for (; seed < 100; ++seed) {
    FaultInjector::global().disarm();
    FaultInjector::global().arm(FaultSite::Run, 0.25, seed);
    obs::metrics().reset();
    try {
      auto r = run_study(test, space, 1, 2);
      if (r.failed_count() > 0 && r.retried_count() == 0) {
        study = std::move(r);
        break;
      }
    } catch (const core::StudyAbort&) {
    }
  }
  ASSERT_TRUE(study.has_value());

  const obs::MetricsSnapshot snap = obs::metrics().snapshot();
  EXPECT_EQ(snap.counters.at("explore.executed"), space.size());
  EXPECT_EQ(snap.counters.at("explore.quarantined"), study->failed_count());
  EXPECT_EQ(snap.counters.at("explore.retried"), study->retried_count());
  EXPECT_GT(snap.counters.at("faults.injected"), 0u);
  EXPECT_EQ(snap.counters.at("faults.injected.run"),
            snap.counters.at("faults.injected"));

  // Attempts: one per successful item, the full retry budget (1 here) per
  // quarantined item -- so with retries=1 attempts == executed.
  EXPECT_EQ(snap.counters.at("explore.attempts"), space.size());

  // The cycles histogram saw exactly the executed ok items.
  std::size_t ok_items = 0;
  for (const auto& o : study->outcomes) {
    if (o.ok()) ++ok_items;
  }
  EXPECT_EQ(snap.histograms.at("explore.cycles").count, ok_items);

  // The cache split can race, but lookups = hits + misses is exact and
  // nonzero.
  EXPECT_GT(snap.counters.at("cache.hits") + snap.counters.at("cache.misses"),
            0u);
}

TEST_F(ObsStudyTest, RetriedItemsCountIntoRetriesAndAttempts) {
  const auto space = small_space();
  mfemini::MfemExampleTest test(5);

  std::optional<core::StudyResult> study;
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    FaultInjector::global().disarm();
    FaultInjector::global().arm(FaultSite::Run, 0.25, seed);
    obs::metrics().reset();
    core::SpaceExplorer explorer(&fpsem::global_code_model(),
                                 toolchain::mfem_baseline(),
                                 toolchain::mfem_speed_reference(), 2);
    core::ExploreOptions eo;
    eo.retry.max_attempts = 3;
    try {
      auto r = explorer.explore(test, space, eo);
      if (r.retried_count() > 0) {
        study = std::move(r);
        break;
      }
    } catch (const core::StudyAbort&) {
    }
  }
  ASSERT_TRUE(study.has_value()) << "no seed produced a retried item";

  const obs::MetricsSnapshot snap = obs::metrics().snapshot();
  EXPECT_EQ(snap.counters.at("explore.retried"), study->retried_count());
  // Attempts exceed items exactly by the extra attempts the outcomes record.
  std::uint64_t expected_attempts = 0;
  for (const auto& o : study->outcomes) {
    expected_attempts += static_cast<std::uint64_t>(o.attempts);
  }
  EXPECT_EQ(snap.counters.at("explore.attempts"), expected_attempts);
}

TEST_F(ObsStudyTest, ShardCyclesHistogramsMergeIntoTheAggregate) {
  const auto space = small_space();
  mfemini::MfemExampleTest test(2);

  dist::ShardOptions opts;
  opts.shards = 3;
  dist::ShardCoordinator coord(&fpsem::global_code_model(),
                               toolchain::mfem_baseline(),
                               toolchain::mfem_speed_reference(), opts);
  const auto sharded = coord.run(test, space);

  obs::HistogramData manual{obs::cycle_buckets()};
  std::uint64_t items = 0;
  for (const auto& rep : sharded.shards) {
    manual += rep.cycles;
    items += rep.cycles.count;
  }
  EXPECT_EQ(sharded.aggregate_cycles(), manual);
  EXPECT_EQ(items, space.size());  // every ok item observed exactly once

  // The merged extremes bound every shard's extremes.
  for (const auto& rep : sharded.shards) {
    if (rep.cycles.count == 0) continue;
    EXPECT_LE(manual.min, rep.cycles.min);
    EXPECT_GE(manual.max, rep.cycles.max);
  }

  const std::string report = dist::shard_report_text(sharded);
  EXPECT_NE(report.find("cycles min"), std::string::npos) << report;
}

TEST_F(ObsStudyTest, WorkflowBisectCountersMatchTheReport) {
  const auto space = small_space();
  mfemini::MfemExampleTest test(13);

  core::WorkflowOptions opts;
  opts.baseline = toolchain::mfem_baseline();
  opts.speed_reference = toolchain::mfem_speed_reference();
  opts.max_bisects = 3;
  opts.k = 1;
  opts.jobs = 2;

  obs::metrics().reset();
  const auto report = core::run_workflow(&fpsem::global_code_model(), test,
                                         space, opts);
  ASSERT_FALSE(report.bisects.empty());

  const obs::MetricsSnapshot snap = obs::metrics().snapshot();
  EXPECT_EQ(snap.counters.at("workflow.bisects"), report.bisects.size());
  EXPECT_EQ(snap.counters.at("workflow.failed_bisects"),
            report.failed_bisect_count());
  EXPECT_EQ(snap.counters.at("bisect.searches"), report.bisects.size());

  // bisect.executions sums the per-search execution counts the report
  // carries -- the headline cost metric reconciles.
  std::uint64_t expected = 0;
  for (const auto& b : report.bisects) {
    expected += static_cast<std::uint64_t>(
        b.bisect.executions > 0 ? b.bisect.executions : 0);
  }
  EXPECT_EQ(snap.counters.at("bisect.executions"), expected);
}

}  // namespace
