// Integration: the sharded distributed study engine.  The merged
// StudyResult must be bitwise-identical to the single-process explorer at
// any (shards, jobs) combination -- fault bookkeeping included -- the
// converged database and merged report CSV must be byte-identical across
// shard counts, resume must stitch per-shard checkpoints (quarantined
// rows included) into the same bytes an uninterrupted run produces, and
// the workflow's explore override must leave the full report unchanged.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <vector>

#include "core/explorer.h"
#include "core/faults.h"
#include "core/report.h"
#include "core/resultsdb.h"
#include "core/workflow.h"
#include "dist/coordinator.h"
#include "mfemini/examples.h"
#include "toolchain/compiler.h"

namespace {

using namespace flit;
using core::FaultInjector;
using core::FaultSite;
using toolchain::Compilation;
using toolchain::OptLevel;

namespace fs = std::filesystem;

std::vector<Compilation> small_space() {
  return {
      {toolchain::gcc(), OptLevel::O0, ""},
      {toolchain::gcc(), OptLevel::O2, ""},
      {toolchain::gcc(), OptLevel::O3, ""},
      {toolchain::gcc(), OptLevel::O2, "-mavx2 -mfma"},
      {toolchain::gcc(), OptLevel::O2, "-funsafe-math-optimizations"},
      {toolchain::clang(), OptLevel::O3, "-ffast-math"},
      {toolchain::icpc(), OptLevel::O2, ""},
      {toolchain::icpc(), OptLevel::O2, "-fp-model precise"},
  };
}

/// A cost-skewed 24-item space for the work-stealing tests.  Under a
/// 4-way partition the first three slices are copies of the baseline
/// compilation -- the explorer reuses the anchor run, so they cost next
/// to nothing -- while the last slice is six distinct compilations that
/// each pay a fresh compile.  The tail shard is therefore always the
/// straggler, and with a small steal grain the drained shards reliably
/// steal from it.
std::vector<Compilation> skewed_space() {
  std::vector<Compilation> space(18, toolchain::mfem_baseline());
  space.push_back({toolchain::gcc(), OptLevel::O3, ""});
  space.push_back({toolchain::gcc(), OptLevel::O2, "-mavx2 -mfma"});
  space.push_back(
      {toolchain::gcc(), OptLevel::O2, "-funsafe-math-optimizations"});
  space.push_back({toolchain::clang(), OptLevel::O3, "-ffast-math"});
  space.push_back({toolchain::icpc(), OptLevel::O2, ""});
  space.push_back({toolchain::icpc(), OptLevel::O2, "-fp-model precise"});
  return space;
}

dist::ShardCoordinator make_coordinator(dist::ShardOptions opts) {
  return dist::ShardCoordinator(&fpsem::global_code_model(),
                                toolchain::mfem_baseline(),
                                toolchain::mfem_speed_reference(),
                                std::move(opts));
}

core::StudyResult reference_study(const core::TestBase& test,
                                  const std::vector<Compilation>& space) {
  core::SpaceExplorer explorer(&fpsem::global_code_model(),
                               toolchain::mfem_baseline(),
                               toolchain::mfem_speed_reference(), 1);
  return explorer.explore(test, space);
}

/// Bitwise equality, bookkeeping included -- the distributed merge must be
/// indistinguishable from a single-rank run.
void expect_identical_studies(const core::StudyResult& a,
                              const core::StudyResult& b) {
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  EXPECT_EQ(a.test_name, b.test_name);
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_EQ(a.outcomes[i].comp, b.outcomes[i].comp) << i;
    EXPECT_EQ(a.outcomes[i].variability, b.outcomes[i].variability) << i;
    EXPECT_EQ(a.outcomes[i].cycles, b.outcomes[i].cycles) << i;
    EXPECT_EQ(a.outcomes[i].speedup, b.outcomes[i].speedup) << i;
    EXPECT_EQ(a.outcomes[i].status, b.outcomes[i].status) << i;
    EXPECT_EQ(a.outcomes[i].attempts, b.outcomes[i].attempts) << i;
    EXPECT_EQ(a.outcomes[i].reason, b.outcomes[i].reason) << i;
  }
}

std::string file_bytes(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Fresh scratch directory per test, removed on teardown; the injector is
/// disarmed on entry and exit.
class DistStudyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultInjector::global().disarm();
    dir_ = fs::temp_directory_path() /
           ("flit_dist_" + std::string(::testing::UnitTest::GetInstance()
                                           ->current_test_info()
                                           ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override {
    FaultInjector::global().disarm();
    fs::remove_all(dir_);
  }

  fs::path dir_;
};

TEST_F(DistStudyTest, MergedStudyIsBitwiseIdenticalAcrossShardsAndJobs) {
  const auto space = small_space();
  mfemini::MfemExampleTest test(5);
  const auto reference = reference_study(test, space);
  const std::string reference_csv = core::study_csv(reference);

  for (int shards : {1, 2, 4}) {
    for (unsigned jobs : {1u, 4u}) {
      dist::ShardOptions opts;
      opts.shards = shards;
      opts.jobs = jobs;
      const auto sharded = make_coordinator(opts).run(test, space);
      expect_identical_studies(sharded.study, reference);
      // The merged report CSV is the same bytes at any shard count.
      EXPECT_EQ(core::study_csv(sharded.study), reference_csv)
          << shards << " shards, " << jobs << " jobs";
      ASSERT_EQ(sharded.shards.size(), static_cast<std::size_t>(shards));
    }
  }
}

TEST_F(DistStudyTest, SerialShardExecutionMatchesPooledExecution) {
  const auto space = small_space();
  mfemini::MfemExampleTest test(3);

  dist::ShardOptions pooled;
  pooled.shards = 3;
  dist::ShardOptions serial = pooled;
  serial.serial_shards = true;

  expect_identical_studies(make_coordinator(serial).run(test, space).study,
                           make_coordinator(pooled).run(test, space).study);
}

TEST_F(DistStudyTest, MoreShardsThanCompilationsStillMerges) {
  auto tiny = small_space();
  tiny.resize(3);
  mfemini::MfemExampleTest test(1);
  const auto reference = reference_study(test, tiny);

  dist::ShardOptions opts;
  opts.shards = 8;
  const auto sharded = make_coordinator(opts).run(test, tiny);
  expect_identical_studies(sharded.study, reference);
  // Ranks past the item count report empty ranges and idle caches.
  for (std::size_t r = 3; r < sharded.shards.size(); ++r) {
    EXPECT_EQ(sharded.shards[r].range.size(), 0u);
    EXPECT_EQ(sharded.shards[r].cache.lookups(), 0u);
  }
}

TEST_F(DistStudyTest, PerShardCacheStatsSumIntoTheAggregate) {
  const auto space = small_space();
  mfemini::MfemExampleTest test(2);

  dist::ShardOptions opts;
  opts.shards = 4;
  const auto sharded = make_coordinator(opts).run(test, space);

  toolchain::CacheStats manual;
  for (const auto& rep : sharded.shards) manual += rep.cache;
  EXPECT_EQ(sharded.aggregate_cache(), manual);
  EXPECT_GT(sharded.aggregate_cache().lookups(), 0u);

  const std::string report = dist::shard_report_text(sharded);
  EXPECT_NE(report.find("sharded study:"), std::string::npos);
  EXPECT_NE(report.find("shard 0:"), std::string::npos);
  EXPECT_NE(report.find("aggregate:"), std::string::npos);
}

TEST_F(DistStudyTest, FaultedStudiesAreBitwiseIdenticalAcrossShardCounts) {
  const auto space = small_space();
  mfemini::MfemExampleTest test(5);

  // Deterministic seed search (the test_fault_tolerance idiom): find a
  // run-fault seed that quarantines at least one item while the anchors
  // survive.
  std::optional<core::StudyResult> reference;
  std::uint64_t seed = 0;
  for (; seed < 100; ++seed) {
    FaultInjector::global().disarm();
    FaultInjector::global().arm(FaultSite::Run, 0.3, seed);
    try {
      auto r = reference_study(test, space);
      if (r.failed_count() > 0) {
        reference = std::move(r);
        break;
      }
    } catch (const core::StudyAbort&) {
    }
  }
  ASSERT_TRUE(reference.has_value())
      << "no seed in [0,100) quarantined an item with live anchors";

  for (int shards : {2, 4}) {
    FaultInjector::global().disarm();
    FaultInjector::global().arm(FaultSite::Run, 0.3, seed);
    dist::ShardOptions opts;
    opts.shards = shards;
    const auto sharded = make_coordinator(opts).run(test, space);
    expect_identical_studies(sharded.study, *reference);
    EXPECT_GT(sharded.study.failed_count(), 0u);
  }
}

TEST_F(DistStudyTest, ConvergedDbIsByteIdenticalAcrossShardCounts) {
  const auto space = small_space();
  mfemini::MfemExampleTest test(5);

  // Single-process incremental --db reference.
  const fs::path ref_path = dir_ / "ref.tsv";
  {
    core::ResultsDb ref_db(ref_path);
    core::SpaceExplorer explorer(&fpsem::global_code_model(),
                                 toolchain::mfem_baseline(),
                                 toolchain::mfem_speed_reference(), 2);
    core::ExploreOptions eo;
    eo.db = &ref_db;
    eo.checkpoint_batch = 3;
    (void)explorer.explore(test, space, eo);
  }
  const std::string reference = file_bytes(ref_path);
  ASSERT_FALSE(reference.empty());

  for (int shards : {1, 2, 4}) {
    const fs::path conv_path =
        dir_ / ("converged-" + std::to_string(shards) + ".tsv");
    core::ResultsDb conv(conv_path);
    dist::ShardOptions opts;
    opts.shards = shards;
    opts.shard_db_dir = dir_ / ("shards-" + std::to_string(shards));
    opts.db = &conv;
    (void)make_coordinator(opts).run(test, space);
    EXPECT_EQ(file_bytes(conv_path), reference) << shards << " shards";
  }
}

TEST_F(DistStudyTest, ResumeStitchesShardCheckpointsByteIdentically) {
  const auto space = small_space();
  mfemini::MfemExampleTest test(5);

  // Arm a quarantining fault configuration for every phase, so the
  // stitched study must carry a quarantined row through resume.
  std::uint64_t seed = 0;
  std::optional<core::StudyResult> faulted;
  for (; seed < 100; ++seed) {
    FaultInjector::global().disarm();
    FaultInjector::global().arm(FaultSite::Run, 0.3, seed);
    try {
      auto r = reference_study(test, space);
      if (r.failed_count() > 0) {
        faulted = std::move(r);
        break;
      }
    } catch (const core::StudyAbort&) {
    }
  }
  ASSERT_TRUE(faulted.has_value());

  const int shards = 2;
  const auto arm = [&] {
    FaultInjector::global().disarm();
    FaultInjector::global().arm(FaultSite::Run, 0.3, seed);
  };

  // Reference: an uninterrupted sharded run under the same faults.
  const fs::path ref_conv = dir_ / "ref-converged.tsv";
  arm();
  {
    core::ResultsDb conv(ref_conv);
    dist::ShardOptions opts;
    opts.shards = shards;
    opts.shard_db_dir = dir_ / "ref-shards";
    opts.db = &conv;
    (void)make_coordinator(opts).run(test, space);
  }

  // "Killed" run: each shard checkpointed only a prefix of its slice
  // (simulated by exploring the prefix directly into the shard's
  // checkpoint file, the file resume will look for).
  const fs::path part_dir = dir_ / "part-shards";
  fs::create_directories(part_dir);
  const dist::ShardComm comm(shards);
  arm();
  for (int r = 0; r < shards; ++r) {
    const auto rg = comm.range(r, space.size());
    const std::size_t half = rg.size() / 2;
    if (half == 0) continue;
    core::ResultsDb shard_db(
        dist::ShardCoordinator::shard_db_path(part_dir, r, shards));
    core::SpaceExplorer explorer(&fpsem::global_code_model(),
                                 toolchain::mfem_baseline(),
                                 toolchain::mfem_speed_reference(), 1);
    core::ExploreOptions eo;
    eo.db = &shard_db;
    const std::vector<Compilation> prefix(space.begin() + rg.begin,
                                          space.begin() + rg.begin + half);
    (void)explorer.explore(test, prefix, eo);
  }

  // Resume stitches the partial checkpoints and completes the study; the
  // converged database must be the same bytes as the uninterrupted run.
  const fs::path conv_path = dir_ / "resumed-converged.tsv";
  arm();
  {
    core::ResultsDb conv(conv_path);
    dist::ShardOptions opts;
    opts.shards = shards;
    opts.jobs = 4;  // resume at a different jobs count on purpose
    opts.shard_db_dir = part_dir;
    opts.db = &conv;
    const auto resumed = make_coordinator(opts).resume(test, space);
    // Prefilled outcomes carry exactly what the checkpoint persists
    // (speedup, variability, status, reason -- cycles and attempt counts
    // are not database-backed), so compare the persisted contract.
    ASSERT_EQ(resumed.study.outcomes.size(), faulted->outcomes.size());
    for (std::size_t i = 0; i < faulted->outcomes.size(); ++i) {
      EXPECT_EQ(resumed.study.outcomes[i].comp, faulted->outcomes[i].comp)
          << i;
      EXPECT_EQ(resumed.study.outcomes[i].speedup,
                faulted->outcomes[i].speedup)
          << i;
      EXPECT_EQ(resumed.study.outcomes[i].variability,
                faulted->outcomes[i].variability)
          << i;
      EXPECT_EQ(resumed.study.outcomes[i].status,
                faulted->outcomes[i].status)
          << i;
      EXPECT_EQ(resumed.study.outcomes[i].reason,
                faulted->outcomes[i].reason)
          << i;
    }
    std::size_t prefilled = 0;
    for (const auto& rep : resumed.shards) prefilled += rep.prefilled;
    EXPECT_GT(prefilled, 0u);
  }
  EXPECT_EQ(file_bytes(conv_path), file_bytes(ref_conv));
}

TEST_F(DistStudyTest, ResumeDoesNotRerunQuarantinedRows) {
  const auto space = small_space();
  mfemini::MfemExampleTest test(5);

  std::uint64_t seed = 0;
  bool found = false;
  for (; seed < 100 && !found; ++seed) {
    FaultInjector::global().disarm();
    FaultInjector::global().arm(FaultSite::Run, 0.3, seed);
    try {
      found = reference_study(test, space).failed_count() > 0;
    } catch (const core::StudyAbort&) {
    }
  }
  ASSERT_TRUE(found);
  --seed;

  dist::ShardOptions opts;
  opts.shards = 2;
  opts.shard_db_dir = dir_ / "shards";

  FaultInjector::global().disarm();
  FaultInjector::global().arm(FaultSite::Run, 0.3, seed);
  const auto faulted = make_coordinator(opts).run(test, space);
  ASSERT_GT(faulted.study.failed_count(), 0u);

  // Resume with the injector disarmed: a re-executed quarantined item
  // would now succeed, so its surviving Crashed status proves the resume
  // restored it from the shard checkpoint instead of re-running it.
  FaultInjector::global().disarm();
  const auto resumed = make_coordinator(opts).resume(test, space);
  EXPECT_EQ(resumed.study.failed_count(), faulted.study.failed_count());
  for (std::size_t i = 0; i < space.size(); ++i) {
    EXPECT_EQ(resumed.study.outcomes[i].status,
              faulted.study.outcomes[i].status)
        << i;
    EXPECT_EQ(resumed.study.outcomes[i].reason,
              faulted.study.outcomes[i].reason)
        << i;
  }
}

// ---- work-stealing rebalancing --------------------------------------------

TEST_F(DistStudyTest, SkewedStudiesAreBitwiseIdenticalAcrossStealOnOff) {
  const auto space = skewed_space();
  mfemini::MfemExampleTest test(5);
  const auto reference = reference_study(test, space);
  const std::string reference_csv = core::study_csv(reference);

  for (bool steal : {false, true}) {
    for (int shards : {1, 2, 4}) {
      for (unsigned jobs : {1u, 4u}) {
        dist::ShardOptions opts;
        opts.shards = shards;
        opts.jobs = jobs;
        opts.steal = steal;
        opts.steal_grain = 2;
        const auto sharded = make_coordinator(opts).run(test, space);
        expect_identical_studies(sharded.study, reference);
        EXPECT_EQ(core::study_csv(sharded.study), reference_csv)
            << (steal ? "steal" : "static") << ", " << shards << " shards, "
            << jobs << " jobs";
      }
    }
  }
}

TEST_F(DistStudyTest, SerialSkewedRunStealsAndKeepsConvergedDbBytes) {
  const auto space = skewed_space();
  mfemini::MfemExampleTest test(5);

  // Single-process incremental --db reference.
  const fs::path ref_path = dir_ / "ref.tsv";
  {
    core::ResultsDb ref_db(ref_path);
    core::SpaceExplorer explorer(&fpsem::global_code_model(),
                                 toolchain::mfem_baseline(),
                                 toolchain::mfem_speed_reference(), 1);
    core::ExploreOptions eo;
    eo.db = &ref_db;
    (void)explorer.explore(test, space, eo);
  }
  const std::string reference = file_bytes(ref_path);
  ASSERT_FALSE(reference.empty());

  for (bool steal : {false, true}) {
    const fs::path conv_path =
        dir_ / (std::string(steal ? "steal" : "static") + "-converged.tsv");
    core::ResultsDb conv(conv_path);
    dist::ShardOptions opts;
    opts.shards = 4;
    opts.serial_shards = true;  // the virtual-clock fleet emulation
    opts.steal = steal;
    opts.steal_grain = 1;
    // No per-shard checkpoint files: a per-claim database save costs
    // about as much as a study item and would drown the cost skew the
    // steal assertions below depend on.
    opts.db = &conv;
    const auto sharded = make_coordinator(opts).run(test, space);

    std::size_t stolen = 0, donated = 0, executed = 0;
    for (const auto& rep : sharded.shards) {
      stolen += rep.stolen;
      donated += rep.donated;
      executed += rep.executed();
    }
    EXPECT_EQ(stolen, donated);
    EXPECT_EQ(executed, space.size());
    if (steal) {
      // Drained shards must have rebalanced work off a straggler, and the
      // rebalance shows up in the report text.  (Which shard ends up the
      // donor depends on measured claim durations -- the virtual clock
      // consumes real wall time -- so only aggregate stealing is asserted.)
      EXPECT_GT(stolen, 0u);
      EXPECT_NE(dist::shard_report_text(sharded).find("stolen over"),
                std::string::npos);
    } else {
      EXPECT_EQ(stolen, 0u);
    }
    // Rebalancing moves wall-clock, never bytes.
    EXPECT_EQ(file_bytes(conv_path), reference)
        << (steal ? "steal" : "static");
  }
}

TEST_F(DistStudyTest, FaultedSkewedStudiesAreIdenticalUnderStealing) {
  const auto space = skewed_space();
  mfemini::MfemExampleTest test(5);

  // Deterministic seed search: a run-fault seed that quarantines at least
  // one item while the anchors survive (only the distinct tail items
  // execute fresh runs, so the quarantined row sits in donated territory).
  std::optional<core::StudyResult> reference;
  std::uint64_t seed = 0;
  for (; seed < 100; ++seed) {
    FaultInjector::global().disarm();
    FaultInjector::global().arm(FaultSite::Run, 0.3, seed);
    try {
      auto r = reference_study(test, space);
      if (r.failed_count() > 0) {
        reference = std::move(r);
        break;
      }
    } catch (const core::StudyAbort&) {
    }
  }
  ASSERT_TRUE(reference.has_value())
      << "no seed in [0,100) quarantined an item with live anchors";

  for (int shards : {2, 4}) {
    for (bool serial : {false, true}) {
      FaultInjector::global().disarm();
      FaultInjector::global().arm(FaultSite::Run, 0.3, seed);
      dist::ShardOptions opts;
      opts.shards = shards;
      opts.serial_shards = serial;
      opts.steal_grain = 1;  // steal as aggressively as possible
      const auto sharded = make_coordinator(opts).run(test, space);
      expect_identical_studies(sharded.study, *reference);
      EXPECT_GT(sharded.study.failed_count(), 0u);
    }
  }
}

TEST_F(DistStudyTest, ResumeStitchesRowsCheckpointedByTheThief) {
  const auto space = skewed_space();
  mfemini::MfemExampleTest test(5);

  std::uint64_t seed = 0;
  bool found = false;
  for (; seed < 100 && !found; ++seed) {
    FaultInjector::global().disarm();
    FaultInjector::global().arm(FaultSite::Run, 0.3, seed);
    try {
      found = reference_study(test, space).failed_count() > 0;
    } catch (const core::StudyAbort&) {
    }
  }
  ASSERT_TRUE(found);
  --seed;

  dist::ShardOptions opts;
  opts.shards = 4;
  opts.serial_shards = true;
  opts.steal_grain = 1;
  opts.shard_db_dir = dir_ / "shards";

  // Seed the head shards' databases with the baseline row, as if a prior
  // run was killed right before the tail shard's first checkpoint.  On
  // resume the head claims all prefill -- a fully prefilled claim skips
  // the per-claim checkpoint save -- so the head shards drain in
  // microseconds while the tail shard pays fresh compiles, making the
  // steal deterministic rather than a race against filesystem latency.
  FaultInjector::global().disarm();
  fs::create_directories(opts.shard_db_dir);
  {
    core::ResultsDb seed_db(
        dist::ShardCoordinator::shard_db_path(opts.shard_db_dir, 0, 4));
    core::SpaceExplorer explorer(&fpsem::global_code_model(),
                                 toolchain::mfem_baseline(),
                                 toolchain::mfem_speed_reference(), 1);
    const std::vector<Compilation> head{toolchain::mfem_baseline()};
    core::ExploreOptions eo;
    eo.db = &seed_db;
    (void)explorer.explore(test, head, eo);
  }
  for (int r : {1, 2}) {
    fs::copy_file(
        dist::ShardCoordinator::shard_db_path(opts.shard_db_dir, 0, 4),
        dist::ShardCoordinator::shard_db_path(opts.shard_db_dir, r, 4));
  }

  FaultInjector::global().disarm();
  FaultInjector::global().arm(FaultSite::Run, 0.3, seed);
  const auto faulted = make_coordinator(opts).resume(test, space);
  ASSERT_GT(faulted.study.failed_count(), 0u);
  std::size_t stolen = 0;
  for (const auto& rep : faulted.shards) stolen += rep.stolen;
  ASSERT_GT(stolen, 0u);

  // Stolen items checkpoint into the thief's shard database: some head
  // shard's file must hold a row for one of the tail compilations it
  // does not statically own.
  bool thief_holds_foreign_row = false;
  for (int r = 0; r < 3 && !thief_holds_foreign_row; ++r) {
    const auto p =
        dist::ShardCoordinator::shard_db_path(opts.shard_db_dir, r, 4);
    if (!fs::exists(p)) continue;
    core::ResultsDb db(p);
    for (std::size_t i = 18; i < space.size(); ++i) {
      if (db.find(test.name(), space[i].str()).has_value()) {
        thief_holds_foreign_row = true;
        break;
      }
    }
  }
  EXPECT_TRUE(thief_holds_foreign_row);

  // Resume with the injector disarmed: every row -- including the ones in
  // thieves' databases -- must prefill by its (test, compilation) key, so
  // nothing re-runs and the quarantined statuses survive.
  FaultInjector::global().disarm();
  const auto resumed = make_coordinator(opts).resume(test, space);
  EXPECT_EQ(resumed.study.failed_count(), faulted.study.failed_count());
  for (std::size_t i = 0; i < space.size(); ++i) {
    EXPECT_EQ(resumed.study.outcomes[i].status,
              faulted.study.outcomes[i].status)
        << i;
    EXPECT_EQ(resumed.study.outcomes[i].reason,
              faulted.study.outcomes[i].reason)
        << i;
  }
  std::size_t prefilled = 0, executed = 0;
  for (const auto& rep : resumed.shards) {
    prefilled += rep.prefilled;
    executed += rep.executed();
  }
  EXPECT_EQ(prefilled, space.size());
  EXPECT_EQ(executed, 0u);
}

TEST_F(DistStudyTest, WorkflowExploreOverrideLeavesTheReportUnchanged) {
  const auto space = small_space();
  mfemini::MfemExampleTest test(13);
  core::WorkflowOptions opts;
  opts.baseline = toolchain::mfem_baseline();
  opts.speed_reference = toolchain::mfem_speed_reference();
  opts.max_bisects = 3;
  opts.k = 1;

  const auto plain =
      core::run_workflow(&fpsem::global_code_model(), test, space, opts);
  ASSERT_FALSE(plain.bisects.empty());

  dist::ShardOptions sopts;
  sopts.shards = 3;
  const auto coord = make_coordinator(sopts);
  opts.explore_override = coord.explore_override();
  const auto sharded =
      core::run_workflow(&fpsem::global_code_model(), test, space, opts);

  // The rendered report covers the study, the recommendation and every
  // bisect finding; equal text means the override was invisible.
  EXPECT_EQ(core::workflow_report_text(sharded),
            core::workflow_report_text(plain));
}

TEST_F(DistStudyTest, CoordinatorRejectsInvalidOptions) {
  dist::ShardOptions zero;
  zero.shards = 0;
  EXPECT_THROW(make_coordinator(zero), std::invalid_argument);

  dist::ShardOptions no_dir;
  no_dir.shards = 2;
  no_dir.resume = true;  // resume needs the checkpoints to stitch
  EXPECT_THROW(make_coordinator(no_dir), std::invalid_argument);
}

}  // namespace
