// Integration: the fault-isolating study engine.  With the deterministic
// injector armed, a study must complete with crashes recorded in their
// outcome slots, retries must recover transient faults to the exact
// unfaulted values, quarantined compilations must never reach the bisect
// phase, a resumed study must skip recorded rows and converge to a
// byte-identical database, and everything must stay bitwise-identical at
// any jobs count -- faults included.
//
// Faults are seeded: where a test needs "some items fail but the anchors
// survive", it searches a small seed range for a configuration with that
// shape (the search itself is deterministic, so the chosen seed is stable
// across runs and platforms).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <vector>

#include "core/explorer.h"
#include "core/faults.h"
#include "core/report.h"
#include "core/resultsdb.h"
#include "core/runner.h"
#include "core/workflow.h"
#include "fpsem/env.h"
#include "mfemini/examples.h"
#include "toolchain/compiler.h"

namespace {

using namespace flit;
using core::FaultInjector;
using core::FaultSite;
using core::OutcomeStatus;
using toolchain::Compilation;
using toolchain::OptLevel;

namespace fs = std::filesystem;

std::vector<Compilation> small_space() {
  return {
      {toolchain::gcc(), OptLevel::O0, ""},
      {toolchain::gcc(), OptLevel::O2, ""},
      {toolchain::gcc(), OptLevel::O3, ""},
      {toolchain::gcc(), OptLevel::O2, "-mavx2 -mfma"},
      {toolchain::gcc(), OptLevel::O2, "-funsafe-math-optimizations"},
      {toolchain::clang(), OptLevel::O3, "-ffast-math"},
      {toolchain::icpc(), OptLevel::O2, ""},
      {toolchain::icpc(), OptLevel::O2, "-fp-model precise"},
  };
}

core::SpaceExplorer make_explorer(unsigned jobs = 1) {
  return core::SpaceExplorer(&fpsem::global_code_model(),
                             toolchain::mfem_baseline(),
                             toolchain::mfem_speed_reference(), jobs);
}

/// Every test runs with the global injector disarmed on entry and exit;
/// tests arm it explicitly.
class FaultToleranceTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::global().disarm(); }
  void TearDown() override {
    FaultInjector::global().disarm();
    if (!db_path_.empty()) fs::remove(db_path_);
  }

  const fs::path& temp_db() {
    db_path_ = fs::temp_directory_path() /
               ("flit_faults_" + std::string(::testing::UnitTest::GetInstance()
                                                 ->current_test_info()
                                                 ->name()) +
                ".tsv");
    fs::remove(db_path_);
    return db_path_;
  }

  fs::path db_path_;
};

// ---- injector unit behavior -----------------------------------------------

TEST_F(FaultToleranceTest, ConfigureRejectsMalformedSpecs) {
  auto& inj = FaultInjector::global();
  EXPECT_THROW(inj.configure("bogus:0.5"), std::invalid_argument);
  EXPECT_THROW(inj.configure("run"), std::invalid_argument);
  EXPECT_THROW(inj.configure("run:frog"), std::invalid_argument);
  EXPECT_THROW(inj.configure("run:0.5:frog"), std::invalid_argument);
  // Probabilities above 1 are configuration mistakes for the failure
  // sites (strtod happily parses them); only kill's batch ordinal may
  // exceed 1.
  EXPECT_THROW(inj.configure("run:1.5"), std::invalid_argument);
  EXPECT_THROW(inj.configure("compile:2"), std::invalid_argument);
  // strtoull silently wraps "-1" to ULLONG_MAX; a signed seed is rejected.
  EXPECT_THROW(inj.configure("run:0.5:-1"), std::invalid_argument);
  EXPECT_THROW(inj.configure("run:0.5:+3"), std::invalid_argument);
  // A site may appear at most once: a duplicate is a configuration
  // mistake (which spec wins?), rejected with the offending token named.
  EXPECT_THROW(inj.configure("run:0.5,run:0.1"), std::invalid_argument);
  EXPECT_THROW(inj.configure("shard:0.2:1,compile:0.1,shard:0.3"),
               std::invalid_argument);
  try {
    inj.configure("run:0.5,run:0.1");
    FAIL() << "duplicate site accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("duplicate site 'run'"),
              std::string::npos)
        << e.what();
  }
  try {
    inj.configure("run:0.5,frobnicate:0.1");
    FAIL() << "unknown site accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("frobnicate"), std::string::npos)
        << e.what();
  }
  // A rejected spec must not half-arm the injector.
  EXPECT_FALSE(inj.any_armed());

  inj.configure("run:0.5:42,link:0.1");
  EXPECT_TRUE(inj.armed(FaultSite::Run));
  EXPECT_TRUE(inj.armed(FaultSite::Link));
  EXPECT_FALSE(inj.armed(FaultSite::Compile));

  // The rank-level sites the fleet supervisor consumes parse like the
  // item-level ones.
  inj.configure("shard:0.25:7,stall:0.1:3");
  EXPECT_TRUE(inj.armed(FaultSite::Shard));
  EXPECT_TRUE(inj.armed(FaultSite::Stall));
  EXPECT_FALSE(inj.armed(FaultSite::Run));

  // The kill "rate" is a checkpoint-batch ordinal, not a probability.
  inj.configure("kill:3:0");
  EXPECT_TRUE(inj.armed(FaultSite::Kill));
}

TEST_F(FaultToleranceTest, DecisionsArePureFunctionsOfTrialScope) {
  auto& inj = FaultInjector::global();
  inj.arm(FaultSite::Run, 0.5, 7);

  std::vector<bool> first, second, retried;
  {
    FaultInjector::ScopedTrial trial("T|g++ -O2", 0);
    for (int k = 0; k < 64; ++k) {
      first.push_back(inj.should_fail(FaultSite::Run, std::to_string(k)));
    }
  }
  {
    FaultInjector::ScopedTrial trial("T|g++ -O2", 0);
    for (int k = 0; k < 64; ++k) {
      second.push_back(inj.should_fail(FaultSite::Run, std::to_string(k)));
    }
  }
  {
    FaultInjector::ScopedTrial trial("T|g++ -O2", 1);  // a retry re-rolls
    for (int k = 0; k < 64; ++k) {
      retried.push_back(inj.should_fail(FaultSite::Run, std::to_string(k)));
    }
  }
  EXPECT_EQ(first, second);
  EXPECT_NE(first, retried);
  // At rate 0.5 over 64 keys, both outcomes must occur.
  EXPECT_NE(std::count(first.begin(), first.end(), true), 0);
  EXPECT_NE(std::count(first.begin(), first.end(), false), 0);
}

TEST_F(FaultToleranceTest, ScopedTrialsNestAndRestore) {
  EXPECT_EQ(FaultInjector::current_context(), "");
  {
    FaultInjector::ScopedTrial outer("outer", 1);
    EXPECT_EQ(FaultInjector::current_context(), "outer");
    EXPECT_EQ(FaultInjector::current_attempt(), 1);
    {
      FaultInjector::ScopedTrial inner("inner", 2);
      EXPECT_EQ(FaultInjector::current_context(), "inner");
      EXPECT_EQ(FaultInjector::current_attempt(), 2);
    }
    EXPECT_EQ(FaultInjector::current_context(), "outer");
    EXPECT_EQ(FaultInjector::current_attempt(), 1);
  }
  EXPECT_EQ(FaultInjector::current_context(), "");
  EXPECT_EQ(FaultInjector::current_attempt(), 0);
}

TEST_F(FaultToleranceTest, KillSwitchFiresAtItsBatchOrdinal) {
  auto& inj = FaultInjector::global();
  EXPECT_FALSE(inj.should_kill(1));
  inj.configure("kill:2:0");
  EXPECT_FALSE(inj.should_kill(1));
  EXPECT_TRUE(inj.should_kill(2));
  EXPECT_TRUE(inj.should_kill(3));  // already past the threshold
}

// ---- crash containment ----------------------------------------------------

/// Arms Run faults at `rate` under successive seeds until the study over
/// `space` completes (anchors survive) and satisfies `pred`; returns the
/// study.  The search is deterministic, so this never flakes.
template <typename Pred>
std::optional<core::StudyResult> explore_with_seed(
    const core::TestBase& test, const std::vector<Compilation>& space,
    double rate, int retries, Pred pred, std::uint64_t* seed_out = nullptr) {
  auto explorer = make_explorer();
  core::ExploreOptions opts;
  opts.retry.max_attempts = retries;
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    FaultInjector::global().disarm();
    FaultInjector::global().arm(FaultSite::Run, rate, seed);
    try {
      core::StudyResult r = explorer.explore(test, space, opts);
      if (pred(r)) {
        if (seed_out != nullptr) *seed_out = seed;
        return r;
      }
    } catch (const core::StudyAbort&) {
      // This seed faulted an anchor; try the next one.
    }
  }
  return std::nullopt;
}

TEST_F(FaultToleranceTest, StudyCompletesWithCrashesRecorded) {
  const auto space = small_space();
  mfemini::MfemExampleTest test(5);
  const auto reference = make_explorer().explore(test, space);

  const auto faulted = explore_with_seed(
      test, space, 0.3, 1,
      [](const core::StudyResult& r) { return r.failed_count() > 0; });
  ASSERT_TRUE(faulted.has_value()) << "no seed in [0,100) crashed an item";

  ASSERT_EQ(faulted->outcomes.size(), space.size());
  for (std::size_t i = 0; i < space.size(); ++i) {
    const auto& o = faulted->outcomes[i];
    if (o.failed()) {
      EXPECT_EQ(o.status, OutcomeStatus::Crashed);
      EXPECT_NE(o.reason.find("injected fault"), std::string::npos);
      EXPECT_EQ(o.attempts, 1);
      EXPECT_EQ(o.speedup, 0.0);
      EXPECT_FALSE(o.bitwise_equal()) << "a quarantined row must never "
                                         "count as reproducible";
    } else {
      // Contained failures are invisible to the surviving outcomes.
      EXPECT_EQ(o.variability, reference.outcomes[i].variability) << i;
      EXPECT_EQ(o.cycles, reference.outcomes[i].cycles) << i;
      EXPECT_EQ(o.speedup, reference.outcomes[i].speedup) << i;
    }
  }

  const std::string accounting = core::failure_report(*faulted);
  EXPECT_NE(accounting.find("failure accounting:"), std::string::npos);
  EXPECT_NE(accounting.find("QUARANTINED"), std::string::npos);
}

TEST_F(FaultToleranceTest, RetriesRecoverTransientFaults) {
  const auto space = small_space();
  mfemini::MfemExampleTest test(5);
  const auto reference = make_explorer().explore(test, space);

  const auto recovered = explore_with_seed(
      test, space, 0.3, 4, [](const core::StudyResult& r) {
        return r.failed_count() == 0 && r.retried_count() > 0;
      });
  ASSERT_TRUE(recovered.has_value())
      << "no seed in [0,100) was fully recovered by 4 attempts";

  // A recovered study carries the exact unfaulted numbers.
  for (std::size_t i = 0; i < space.size(); ++i) {
    const auto& o = recovered->outcomes[i];
    EXPECT_EQ(o.variability, reference.outcomes[i].variability) << i;
    EXPECT_EQ(o.cycles, reference.outcomes[i].cycles) << i;
    EXPECT_EQ(o.speedup, reference.outcomes[i].speedup) << i;
    if (o.status == OutcomeStatus::Retried) {
      EXPECT_GT(o.attempts, 1);
      EXPECT_NE(o.reason.find("recovered from:"), std::string::npos);
    }
  }
}

TEST_F(FaultToleranceTest, NoKeepGoingRethrowsTheLowestIndexFailure) {
  const auto space = small_space();
  mfemini::MfemExampleTest test(5);
  std::uint64_t seed = 0;
  ASSERT_TRUE(explore_with_seed(
                  test, space, 0.3, 1,
                  [](const core::StudyResult& r) {
                    return r.failed_count() > 0;
                  },
                  &seed)
                  .has_value());

  FaultInjector::global().disarm();
  FaultInjector::global().arm(FaultSite::Run, 0.3, seed);
  core::ExploreOptions opts;
  opts.keep_going = false;
  auto explorer = make_explorer();
  EXPECT_THROW((void)explorer.explore(test, space, opts),
               core::ExecutionCrash);
}

TEST_F(FaultToleranceTest, AnchorCrashAbortsWithDiagnostic) {
  const auto space = small_space();
  mfemini::MfemExampleTest test(5);
  FaultInjector::global().arm(FaultSite::Run, 1.0);  // everything dies
  auto explorer = make_explorer();
  try {
    (void)explorer.explore(test, space);
    FAIL() << "an unrunnable baseline must abort the study";
  } catch (const core::StudyAbort& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("baseline"), std::string::npos);
    EXPECT_NE(what.find(toolchain::mfem_baseline().str()),
              std::string::npos);
  }
}

TEST_F(FaultToleranceTest, FaultedStudiesAreBitwiseIdenticalAcrossJobs) {
  const auto space = small_space();
  mfemini::MfemExampleTest test(5);
  std::uint64_t seed = 0;
  ASSERT_TRUE(explore_with_seed(
                  test, space, 0.25, 2,
                  [](const core::StudyResult& r) {
                    return r.failed_count() > 0 || r.retried_count() > 0;
                  },
                  &seed)
                  .has_value());

  FaultInjector::global().disarm();
  FaultInjector::global().arm(FaultSite::Run, 0.25, seed);
  core::ExploreOptions opts;
  opts.retry.max_attempts = 2;

  const auto reference = make_explorer(1).explore(test, space, opts);
  for (unsigned jobs : {2u, 8u}) {
    const auto parallel = make_explorer(jobs).explore(test, space, opts);
    ASSERT_EQ(parallel.outcomes.size(), reference.outcomes.size());
    for (std::size_t i = 0; i < reference.outcomes.size(); ++i) {
      const auto& a = reference.outcomes[i];
      const auto& b = parallel.outcomes[i];
      EXPECT_EQ(a.comp, b.comp) << i;
      EXPECT_EQ(a.variability, b.variability) << i;
      EXPECT_EQ(a.cycles, b.cycles) << i;
      EXPECT_EQ(a.speedup, b.speedup) << i;
      // Fault bookkeeping must be schedule-independent too.
      EXPECT_EQ(a.status, b.status) << i;
      EXPECT_EQ(a.attempts, b.attempts) << i;
      EXPECT_EQ(a.reason, b.reason) << i;
    }
  }
}

// ---- workflow containment -------------------------------------------------

TEST_F(FaultToleranceTest, QuarantinedCompilationsAreExcludedFromBisects) {
  const auto space = small_space();
  mfemini::MfemExampleTest test(13);
  core::WorkflowOptions opts;
  opts.baseline = toolchain::mfem_baseline();
  opts.speed_reference = toolchain::mfem_speed_reference();
  opts.k = 1;

  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    FaultInjector::global().disarm();
    FaultInjector::global().arm(FaultSite::Run, 0.3, seed);
    core::WorkflowReport report;
    try {
      report = core::run_workflow(&fpsem::global_code_model(), test, space,
                                  opts);
    } catch (const core::StudyAbort&) {
      continue;
    }
    if (report.study.failed_count() == 0) continue;

    // Quarantined outcomes have no measurable variability to root-cause.
    for (const auto& vb : report.bisects) {
      EXPECT_TRUE(vb.outcome.ok());
      EXPECT_GT(vb.outcome.variability, 0.0L);
    }
    // The recommendation never points at a quarantined row either.
    if (report.fastest_reproducible != nullptr) {
      EXPECT_TRUE(report.fastest_reproducible->ok());
    }
    return;
  }
  FAIL() << "no seed in [0,100) quarantined an item with live anchors";
}

TEST_F(FaultToleranceTest, WorkflowRecordsFailedBisectsInsteadOfAborting) {
  const auto space = small_space();
  mfemini::MfemExampleTest test(13);
  core::WorkflowOptions opts;
  opts.baseline = toolchain::mfem_baseline();
  opts.speed_reference = toolchain::mfem_speed_reference();
  opts.k = 1;

  // Link faults: rare enough that the 8 whole-program links of the study
  // usually survive, but the hundreds of per-probe links inside a bisect
  // make at least one search die.
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    FaultInjector::global().disarm();
    FaultInjector::global().arm(FaultSite::Link, 0.02, seed);
    core::WorkflowReport report;
    try {
      report = core::run_workflow(&fpsem::global_code_model(), test, space,
                                  opts);
    } catch (const core::StudyAbort&) {
      continue;
    }
    if (report.failed_bisect_count() == 0) continue;

    bool saw_aborted = false;
    for (const auto& vb : report.bisects) {
      if (!vb.bisect.crashed) continue;
      saw_aborted = true;
      EXPECT_FALSE(vb.bisect.crash_reason.empty());
    }
    EXPECT_TRUE(saw_aborted);
    // The failed search shows up in the Table-2-style accounting.
    const std::string text = core::workflow_report_text(report);
    EXPECT_NE(text.find("failed searches:"), std::string::npos);
    return;
  }
  FAIL() << "no seed in [0,100) produced a failed bisect";
}

// ---- checkpoint / resume --------------------------------------------------

const fpsem::FunctionId kFault = fpsem::register_fn({
    .name = "faulttest::kernel",
    .file = "faulttest/kernel.cpp",
});

/// Counts real executions so resume's skipping is observable.
class CountingTest final : public core::TestBase {
 public:
  std::string name() const override { return "FaultCountingTest"; }
  std::size_t getInputsPerRun() const override { return 0; }
  std::vector<double> getDefaultInput() const override { return {}; }
  core::TestResult run_impl(const std::vector<double>&,
                            fpsem::EvalContext& ctx) const override {
    ++runs;
    std::vector<double> v(32);
    for (std::size_t i = 0; i < v.size(); ++i) {
      v[i] = 1.0 / (static_cast<double>(i) + 3.0);
    }
    fpsem::FpEnv env = ctx.fn(kFault);
    return static_cast<long double>(env.sum(v));
  }

  mutable std::atomic<int> runs{0};
};

TEST_F(FaultToleranceTest, ResumeSkipsRecordedRows) {
  const auto space = small_space();
  const fs::path& path = temp_db();

  core::ResultsDb db(path);
  core::ExploreOptions opts;
  opts.db = &db;
  opts.checkpoint_batch = 2;

  CountingTest first;
  const auto full = make_explorer(2).explore(first, space, opts);
  EXPECT_EQ(db.size(), space.size());
  // Anchors (2) + the 6 space entries that are not an anchor compilation.
  EXPECT_EQ(first.runs.load(), 8);

  // A second study over the same database re-runs only the anchors.
  CountingTest second;
  opts.resume = true;
  const auto resumed = make_explorer(2).explore(second, space, opts);
  EXPECT_EQ(second.runs.load(), 2);

  ASSERT_EQ(resumed.outcomes.size(), full.outcomes.size());
  for (std::size_t i = 0; i < full.outcomes.size(); ++i) {
    EXPECT_EQ(resumed.outcomes[i].comp, full.outcomes[i].comp) << i;
    EXPECT_EQ(resumed.outcomes[i].variability,
              full.outcomes[i].variability)
        << i;
    EXPECT_EQ(resumed.outcomes[i].speedup, full.outcomes[i].speedup) << i;
    EXPECT_EQ(resumed.outcomes[i].status, full.outcomes[i].status) << i;
  }
}

TEST_F(FaultToleranceTest, ResumeDoesNotRerunQuarantinedRows) {
  const auto space = small_space();
  mfemini::MfemExampleTest test(5);
  std::uint64_t seed = 0;
  ASSERT_TRUE(explore_with_seed(
                  test, space, 0.3, 1,
                  [](const core::StudyResult& r) {
                    return r.failed_count() > 0;
                  },
                  &seed)
                  .has_value());

  const fs::path& path = temp_db();
  core::ResultsDb db(path);
  core::ExploreOptions opts;
  opts.db = &db;

  FaultInjector::global().disarm();
  FaultInjector::global().arm(FaultSite::Run, 0.3, seed);
  const auto faulted = make_explorer().explore(test, space, opts);
  ASSERT_GT(faulted.failed_count(), 0u);

  // Resume with the injector disarmed: if the quarantined rows were
  // re-executed they would now succeed, so their surviving Crashed status
  // proves the resume skipped them.
  FaultInjector::global().disarm();
  opts.resume = true;
  const auto resumed = make_explorer().explore(test, space, opts);
  EXPECT_EQ(resumed.failed_count(), faulted.failed_count());
  for (std::size_t i = 0; i < faulted.outcomes.size(); ++i) {
    EXPECT_EQ(resumed.outcomes[i].status, faulted.outcomes[i].status) << i;
    EXPECT_EQ(resumed.outcomes[i].reason, faulted.outcomes[i].reason) << i;
  }
}

TEST_F(FaultToleranceTest, InterruptedStudyConvergesToByteIdenticalDb) {
  const auto space = small_space();
  mfemini::MfemExampleTest test(5);

  // Uninterrupted reference database.
  const fs::path ref_path = fs::temp_directory_path() / "flit_faults_ref.tsv";
  fs::remove(ref_path);
  {
    core::ResultsDb ref_db(ref_path);
    core::ExploreOptions opts;
    opts.db = &ref_db;
    opts.checkpoint_batch = 3;
    (void)make_explorer(4).explore(test, space, opts);
  }

  // "Killed" run: only the first half of the space completes, then a
  // fresh process resumes over the full space at a different jobs count.
  const fs::path& path = temp_db();
  {
    core::ResultsDb db(path);
    core::ExploreOptions opts;
    opts.db = &db;
    opts.checkpoint_batch = 3;
    const std::vector<Compilation> half(space.begin(),
                                        space.begin() + 4);
    (void)make_explorer(2).explore(test, half, opts);
  }
  {
    core::ResultsDb db(path);
    core::ExploreOptions opts;
    opts.db = &db;
    opts.resume = true;
    opts.checkpoint_batch = 3;
    (void)make_explorer(8).explore(test, space, opts);
  }

  std::ifstream a(ref_path), b(path);
  std::stringstream sa, sb;
  sa << a.rdbuf();
  sb << b.rdbuf();
  EXPECT_EQ(sa.str(), sb.str());
  fs::remove(ref_path);
}

}  // namespace
