// The Sec. 3.5 injection framework end-to-end on mini-LULESH: site
// enumeration, single-experiment classification, and the paper's headline
// property -- zero wrong finds and zero missed finds.

#include <gtest/gtest.h>

#include "core/injection.h"
#include "lulesh/domain.h"
#include "toolchain/compiler.h"

namespace {

using namespace flit;
using core::InjectionCampaign;
using core::InjectionExperiment;
using core::InjectionVerdict;

lulesh::LuleshOptions small_opts() {
  lulesh::LuleshOptions o;
  o.num_elems = 16;
  o.stop_cycle = 12;
  return o;
}

toolchain::Compilation build_comp() {
  return {toolchain::gcc(), toolchain::OptLevel::O2, ""};
}

InjectionCampaign make_campaign(const lulesh::LuleshTest& test) {
  InjectionCampaign c(&fpsem::global_code_model(), &test, build_comp());
  c.set_scope(lulesh::lulesh_source_files());
  return c;
}

TEST(InjectionCampaign, EnumeratesAHealthyNumberOfSites) {
  lulesh::LuleshTest test(small_opts());
  auto campaign = make_campaign(test);
  const auto sites = campaign.enumerate_sites();
  EXPECT_GE(sites.size(), 60u);   // mini-LULESH has O(100) FP instructions
  EXPECT_LE(sites.size(), 400u);
  // All sites belong to lulesh functions.
  auto& model = fpsem::global_code_model();
  for (const auto& s : sites) {
    const auto& file = model.info(s.fn).file;
    EXPECT_TRUE(file.starts_with("lulesh/")) << file;
  }
}

TEST(InjectionCampaign, EnumerationIsDeterministic) {
  lulesh::LuleshTest test(small_opts());
  auto campaign = make_campaign(test);
  EXPECT_EQ(campaign.enumerate_sites(), campaign.enumerate_sites());
}

TEST(InjectionCampaign, EpsDrawIsDeterministicAndInUnitInterval) {
  lulesh::LuleshTest test(small_opts());
  auto campaign = make_campaign(test);
  const auto sites = campaign.enumerate_sites();
  ASSERT_FALSE(sites.empty());
  for (auto op : {fpsem::InjectOp::Add, fpsem::InjectOp::Mul}) {
    const double e1 = InjectionCampaign::draw_eps(sites[0], op);
    const double e2 = InjectionCampaign::draw_eps(sites[0], op);
    EXPECT_EQ(e1, e2);
    EXPECT_GT(e1, 0.0);
    EXPECT_LT(e1, 1.0);
  }
}

TEST(InjectionCampaign, SampledExperimentsHaveNoWrongOrMissedFinds) {
  // A strided sample of the full campaign (the complete 4 * |sites| sweep
  // is bench_table5_injection); precision and recall must already be
  // perfect on the sample.
  lulesh::LuleshTest test(small_opts());
  auto campaign = make_campaign(test);
  const auto sites = campaign.enumerate_sites();
  std::vector<core::InjectionReport> reports;
  const fpsem::InjectOp ops[] = {fpsem::InjectOp::Add, fpsem::InjectOp::Sub,
                                 fpsem::InjectOp::Mul, fpsem::InjectOp::Div};
  for (std::size_t i = 0; i < sites.size(); i += 7) {
    const auto op = ops[(i / 7) % 4];
    reports.push_back(campaign.run_one(InjectionExperiment{
        sites[i], op, InjectionCampaign::draw_eps(sites[i], op)}));
  }
  const auto summary = InjectionCampaign::summarize(reports);
  EXPECT_EQ(summary.wrong, 0);
  EXPECT_EQ(summary.missed, 0);
  EXPECT_GT(summary.exact + summary.indirect, 0);
  EXPECT_DOUBLE_EQ(summary.precision(), 1.0);
  EXPECT_DOUBLE_EQ(summary.recall(), 1.0);
  EXPECT_GT(summary.avg_executions, 0.0);
  EXPECT_LT(summary.avg_executions, 40.0);  // paper: ~15 on average
}

TEST(InjectionCampaign, InternalFunctionInjectionIsAnIndirectFind) {
  lulesh::LuleshTest test(small_opts());
  auto campaign = make_campaign(test);
  const auto sites = campaign.enumerate_sites();
  auto& model = fpsem::global_code_model();
  bool saw_internal = false;
  for (const auto& s : sites) {
    if (model.info(s.fn).exported) continue;
    const auto report = campaign.run_one(InjectionExperiment{
        s, fpsem::InjectOp::Mul,
        InjectionCampaign::draw_eps(s, fpsem::InjectOp::Mul)});
    if (report.verdict == InjectionVerdict::NotMeasurable) continue;
    EXPECT_EQ(report.verdict, InjectionVerdict::Indirect)
        << model.info(s.fn).name;
    saw_internal = true;
    break;
  }
  EXPECT_TRUE(saw_internal);
}

TEST(InjectionCampaign, TinyPerturbationIsNotMeasurable) {
  lulesh::LuleshTest test(small_opts());
  auto campaign = make_campaign(test);
  const auto sites = campaign.enumerate_sites();
  ASSERT_FALSE(sites.empty());
  // An additive 1e-300 is absorbed by every double in the program.
  const auto report = campaign.run_one(
      InjectionExperiment{sites[0], fpsem::InjectOp::Add, 1e-300});
  EXPECT_EQ(report.verdict, InjectionVerdict::NotMeasurable);
  EXPECT_TRUE(report.reported_symbols.empty());
}

TEST(InjectionCampaign, VerdictNamesAreStable) {
  EXPECT_STREQ(to_string(InjectionVerdict::Exact), "exact find");
  EXPECT_STREQ(to_string(InjectionVerdict::Indirect), "indirect find");
  EXPECT_STREQ(to_string(InjectionVerdict::Wrong), "wrong find");
  EXPECT_STREQ(to_string(InjectionVerdict::Missed), "missed find");
  EXPECT_STREQ(to_string(InjectionVerdict::NotMeasurable), "not measurable");
}

}  // namespace
