// The blame-dedup campaign suite (ctest label "blame"):
//   * ProbeMemo keying and sharing semantics -- the key covers exactly
//     the linked executable's behavioural content, first store wins, and
//     probes answered from the memo still count as logical executions,
//   * concurrent BisectDrivers over one CompilationCache + ProbeMemo
//     produce findings and `executions` counts identical to a serial
//     memo-less run (the satellite contract),
//   * the campaign report is bitwise-identical across shards x jobs x
//     steal x memo,
//   * mechanism signatures, compilation distance, study/db enumeration,
//     adversarial pairs, and the workflow's --max-bisects skip line.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "blame/campaign.h"
#include "core/explorer.h"
#include "core/hierarchy.h"
#include "core/parallel.h"
#include "core/probe_memo.h"
#include "core/registry.h"
#include "core/report.h"
#include "core/resultsdb.h"
#include "core/workflow.h"
#include "fpsem/code_model.h"
#include "gen/dedup.h"
#include "gen/suite.h"
#include "toolchain/compile_cache.h"
#include "toolchain/compiler.h"
#include "toolchain/linker.h"

namespace flit {
namespace {

// ------------------------------------------------------------ probe memo

toolchain::Executable make_exe(std::size_t n, fpsem::FnBinding b) {
  toolchain::Executable exe;
  exe.map = fpsem::SemanticsMap::uniform(n, b);
  exe.from_injected.assign(n, false);
  return exe;
}

TEST(ProbeMemo, KeyCoversTestNameSemanticsCostAndCrashState) {
  fpsem::FnBinding base;
  const toolchain::Executable exe = make_exe(3, base);

  const std::string k = core::ProbeMemo::key_of("T", exe);
  EXPECT_EQ(k, core::ProbeMemo::key_of("T", exe));
  EXPECT_NE(k, core::ProbeMemo::key_of("U", exe));

  fpsem::FnBinding fma = base;
  fma.sem.contract_fma = true;
  EXPECT_NE(k, core::ProbeMemo::key_of("T", make_exe(3, fma)));

  fpsem::FnBinding wide = base;
  wide.sem.reassoc_width = 4;
  EXPECT_NE(k, core::ProbeMemo::key_of("T", make_exe(3, wide)));

  fpsem::FnBinding cost = base;
  cost.cost.time_scale *= 2.0;
  EXPECT_NE(k, core::ProbeMemo::key_of("T", make_exe(3, cost)));

  toolchain::Executable crashing = make_exe(3, base);
  crashing.crashes = true;
  crashing.crash_reason = "abi";
  EXPECT_NE(k, core::ProbeMemo::key_of("T", crashing));

  toolchain::Executable injected = make_exe(3, base);
  injected.from_injected[1] = true;
  EXPECT_NE(k, core::ProbeMemo::key_of("T", injected));
}

TEST(ProbeMemo, FirstStoreWinsAndStatsCountProbes) {
  core::ProbeMemo memo;
  EXPECT_FALSE(memo.lookup("k").has_value());

  core::RunOutput out;
  out.cycles = 7.0;
  memo.store("k", core::ProbeMemo::Entry{false, "", out});

  core::RunOutput other;
  other.cycles = 99.0;
  memo.store("k", core::ProbeMemo::Entry{false, "", other});

  const auto hit = memo.lookup("k");
  ASSERT_TRUE(hit.has_value());
  EXPECT_FALSE(hit->crashed);
  EXPECT_EQ(hit->output.cycles, 7.0);

  const core::ProbeMemo::Stats s = memo.stats();
  EXPECT_EQ(s.probes, 2u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.entries, 1u);
}

// ------------------------------------------- signatures and distance

TEST(MechanismSignature, IdenticalCompilationsAreNone) {
  const toolchain::Compilation b = toolchain::mfem_baseline();
  EXPECT_EQ(blame::mechanism_signature(b, b), "none");
}

TEST(MechanismSignature, FmaFlagsNameContraction) {
  const toolchain::Compilation b = toolchain::mfem_baseline();
  toolchain::Compilation v = b;
  v.opt = toolchain::OptLevel::O3;
  v.flag = "-mavx2 -mfma";
  const std::string sig = blame::mechanism_signature(b, v);
  EXPECT_NE(sig.find("contract_fma"), std::string::npos) << sig;
}

TEST(MechanismSignature, IntelLinkDriverNamesLinkFastLibm) {
  const toolchain::Compilation b = toolchain::mfem_baseline();
  toolchain::Compilation v;
  v.compiler = toolchain::icpc();
  v.opt = toolchain::OptLevel::O0;
  const std::string sig = blame::mechanism_signature(b, v);
  EXPECT_NE(sig.find("link_fast_libm"), std::string::npos) << sig;
}

TEST(CompilationDistance, CountsCompilerOptAndFlagSplits) {
  toolchain::Compilation a = toolchain::mfem_baseline();  // g++ -O0
  EXPECT_EQ(blame::compilation_distance(a, a), 0);

  toolchain::Compilation flags = a;
  flags.flag = "-mavx2 -mfma";
  EXPECT_EQ(blame::compilation_distance(a, flags), 2);

  toolchain::Compilation opt = a;
  opt.opt = toolchain::OptLevel::O3;
  EXPECT_EQ(blame::compilation_distance(a, opt), 30);

  toolchain::Compilation other = a;
  other.compiler = toolchain::clang();
  EXPECT_EQ(blame::compilation_distance(a, other), 100);

  // Shared tokens do not count: only the symmetric difference does.
  toolchain::Compilation x = a, y = a;
  x.flag = "-funsafe-math-optimizations -mfma";
  y.flag = "-funsafe-math-optimizations -mavx2";
  EXPECT_EQ(blame::compilation_distance(x, y), 2);
  EXPECT_EQ(blame::compilation_distance(y, x), 2);
}

// -------------------------------------------------------- shared corpus

/// One generated corpus explored over a deterministic 31-point slice of
/// the MFEM study space, built once and shared by every campaign test.
struct Corpus {
  fpsem::CodeModel model;
  core::TestRegistry registry;
  gen::InstalledSuite suite;
  std::vector<toolchain::Compilation> space;
  core::StudyResult study;
  blame::CampaignInput input;
};

Corpus& corpus() {
  static Corpus* c = [] {
    auto* cc = new Corpus;
    gen::GenSpec spec;
    spec.seed = 5;
    spec.count = 6;
    cc->suite = gen::install_suite(spec, cc->model, &cc->registry);
    const std::vector<toolchain::Compilation> full =
        toolchain::mfem_study_space();
    for (std::size_t i = 0; i < full.size(); i += 8) {
      cc->space.push_back(full[i]);
    }
    const core::SpaceExplorer explorer(&cc->model, toolchain::mfem_baseline(),
                                       toolchain::mfem_speed_reference(), 4);
    const auto test = cc->registry.create(gen::kSuiteTestName);
    cc->study = explorer.explore(*test, cc->space);
    cc->input = blame::input_from_study(cc->study);
    return cc;
  }();
  return *c;
}

blame::BlameOptions base_options() {
  blame::BlameOptions opts;
  opts.baseline = toolchain::mfem_baseline();
  opts.k = 0;
  return opts;
}

// ------------------------------------------------------ cell enumeration

TEST(CellEnumeration, StudyCellsAreTheVariableOutcomes) {
  Corpus& c = corpus();
  ASSERT_GT(c.input.cells.size(), 3u)
      << "corpus slice produced too little variability to test against";
  EXPECT_EQ(c.input.cells.size(), c.study.variable_count());

  std::size_t equal = 0;
  for (const core::CompilationOutcome& o : c.study.outcomes) {
    if (o.bitwise_equal()) ++equal;
  }
  ASSERT_EQ(c.input.equal_comps.count(gen::kSuiteTestName), 1u);
  EXPECT_EQ(c.input.equal_comps.at(gen::kSuiteTestName).size(), equal);
  for (const blame::Cell& cell : c.input.cells) {
    EXPECT_EQ(cell.test, gen::kSuiteTestName);
    EXPECT_GT(cell.variability, 0.0L);
  }
}

TEST(CellEnumeration, DbRoundTripMatchesTheLiveStudy) {
  Corpus& c = corpus();
  const std::filesystem::path path =
      std::filesystem::path(::testing::TempDir()) / "blame_roundtrip.tsv";
  std::filesystem::remove(path);
  core::ResultsDb db(path);
  db.record(c.study);

  const blame::CampaignInput from_db = blame::input_from_db(db, c.space);
  EXPECT_EQ(from_db.dropped_rows, 0u);
  ASSERT_EQ(from_db.cells.size(), c.input.cells.size());
  for (std::size_t i = 0; i < from_db.cells.size(); ++i) {
    EXPECT_EQ(from_db.cells[i].test, c.input.cells[i].test);
    EXPECT_EQ(from_db.cells[i].variable, c.input.cells[i].variable);
    EXPECT_EQ(from_db.cells[i].variability, c.input.cells[i].variability);
  }
  EXPECT_EQ(from_db.equal_comps, c.input.equal_comps);

  // Rows naming compilations outside the space are dropped, not bisected.
  const std::vector<toolchain::Compilation> half(
      c.space.begin(), c.space.begin() + c.space.size() / 2);
  const blame::CampaignInput partial = blame::input_from_db(db, half);
  EXPECT_GT(partial.dropped_rows, 0u);
  EXPECT_LT(partial.cells.size(), from_db.cells.size());
  std::filesystem::remove(path);
}

// ------------------------- satellite: concurrent drivers share one memo

/// The comparable part of a bisect outcome: everything except the
/// scheduling-dependent memo-hit split.
std::string outcome_fingerprint(const core::HierarchicalOutcome& out) {
  std::string s;
  s += out.crashed ? "crash:" + out.crash_reason : "ok";
  s += "|exec=" + std::to_string(out.executions);
  for (const core::FileFinding& f : out.findings) {
    s += "|" + f.file + "=" + std::to_string(f.value);
    for (const core::SymbolFinding& sf : f.symbols) {
      s += "," + sf.symbol + "=" + std::to_string(sf.value);
    }
  }
  return s;
}

std::vector<std::string> bisect_cells(unsigned jobs, bool memo) {
  Corpus& c = corpus();
  const std::size_t n = std::min<std::size_t>(c.input.cells.size(), 8);
  std::vector<std::string> prints(n);

  toolchain::CompilationCache cache;
  core::ProbeMemo shared;
  core::ThreadPool pool(jobs);
  pool.parallel_for(n, [&](std::size_t i) {
    const auto test = c.registry.create(c.input.cells[i].test);
    core::BisectConfig cfg;
    cfg.baseline = toolchain::mfem_baseline();
    cfg.variable = c.input.cells[i].variable;
    cfg.k = 0;
    cfg.memo = memo ? &shared : nullptr;
    core::BisectDriver driver(&c.model, test.get(), cfg, &cache);
    core::HierarchicalOutcome out = driver.run();
    if (memo) {
      EXPECT_EQ(out.memo_hits <= out.executions, true);
    } else {
      EXPECT_EQ(out.memo_hits, 0);
    }
    prints[i] = outcome_fingerprint(out);
  });
  return prints;
}

TEST(ConcurrentDrivers, FindingsAndExecutionsMatchSerialAtAnyJobsAndMemo) {
  const std::vector<std::string> reference = bisect_cells(1, false);
  EXPECT_EQ(bisect_cells(1, true), reference);
  EXPECT_EQ(bisect_cells(4, false), reference);
  EXPECT_EQ(bisect_cells(4, true), reference);
}

// ---------------------------------------------------- campaign identity

std::string campaign_text(int shards, unsigned jobs, bool steal, bool memo) {
  Corpus& c = corpus();
  blame::BlameOptions opts = base_options();
  opts.memo = memo;
  opts.shard.shards = shards;
  opts.shard.jobs = jobs;
  opts.shard.steal = steal;
  return blame::run_campaign(&c.model, c.registry, c.input, opts).text();
}

TEST(Campaign, ReportIsBitwiseIdenticalAcrossShardsJobsStealAndMemo) {
  const std::string reference = campaign_text(1, 1, false, true);
  EXPECT_EQ(campaign_text(2, 1, true, true), reference);
  EXPECT_EQ(campaign_text(2, 4, true, true), reference);
  EXPECT_EQ(campaign_text(4, 4, false, true), reference);
  EXPECT_EQ(campaign_text(2, 2, true, false), reference);
}

TEST(Campaign, MemoDedupesRealExecutionsWithoutChangingLogicalCounts) {
  Corpus& c = corpus();
  blame::BlameOptions with = base_options();
  blame::BlameOptions without = base_options();
  without.memo = false;

  const blame::BlameReport memo_on =
      blame::run_campaign(&c.model, c.registry, c.input, with);
  const blame::BlameReport memo_off =
      blame::run_campaign(&c.model, c.registry, c.input, without);

  EXPECT_EQ(memo_on.executions, memo_off.executions);
  EXPECT_EQ(memo_off.memo_hits, 0);
  EXPECT_GT(memo_on.memo_hits, 0) << "shared-prefix probes never re-hit";
  EXPECT_LT(memo_on.executions - memo_on.memo_hits, memo_off.executions);
}

TEST(Campaign, ClustersPartitionTheBisectedCells) {
  Corpus& c = corpus();
  const blame::BlameReport report =
      blame::run_campaign(&c.model, c.registry, c.input, base_options());

  std::set<std::size_t> seen;
  std::set<std::string> ids;
  for (const blame::BlameCluster& cluster : report.clusters) {
    EXPECT_EQ(cluster.id.rfind("site-", 0), 0u);
    EXPECT_EQ(cluster.id.size(), 5u + 16u);
    EXPECT_TRUE(ids.insert(cluster.id).second) << "duplicate " << cluster.id;
    ASSERT_FALSE(cluster.members.empty());
    EXPECT_TRUE(std::is_sorted(cluster.members.begin(),
                               cluster.members.end()));
    for (const std::size_t m : cluster.members) {
      EXPECT_TRUE(seen.insert(m).second) << "cell in two clusters";
    }
  }
  for (const std::size_t f : report.failed_cells) {
    EXPECT_TRUE(seen.insert(f).second) << "failed cell also clustered";
  }
  EXPECT_EQ(seen.size(), report.cells.size());
}

TEST(Campaign, AdversarialPairsAreConfirmedAndMinimalAgainstTheirMember) {
  Corpus& c = corpus();
  const blame::BlameReport report =
      blame::run_campaign(&c.model, c.registry, c.input, base_options());
  ASSERT_FALSE(report.clusters.empty());

  const toolchain::Compilation baseline = toolchain::mfem_baseline();
  for (const blame::BlameCluster& cluster : report.clusters) {
    EXPECT_TRUE(cluster.pair.confirmed) << cluster.id;
    const blame::Cell& rep = report.cells[cluster.members.front()].cell;
    // The selected pair is never farther apart than the default
    // (campaign baseline, representative variable) pair it replaces.
    EXPECT_LE(cluster.pair.distance,
              blame::compilation_distance(baseline, rep.variable))
        << cluster.id;
    EXPECT_EQ(blame::mechanism_signature(cluster.pair.baseline,
                                         cluster.pair.variable)
                  .empty(),
              false);
  }
}

TEST(Campaign, UnknownTestsAndMaxCellsAreCountedNotBisected) {
  Corpus& c = corpus();
  blame::CampaignInput input = c.input;
  blame::Cell bogus;
  bogus.test = "NoSuchTest";
  bogus.variable = toolchain::mfem_speed_reference();
  bogus.variability = 1.0L;
  input.cells.push_back(bogus);

  blame::BlameOptions opts = base_options();
  opts.max_cells = 2;
  const blame::BlameReport report =
      blame::run_campaign(&c.model, c.registry, input, opts);

  EXPECT_EQ(report.unknown_tests, 1u);
  EXPECT_EQ(report.cells.size(), 2u);
  EXPECT_EQ(report.cells_skipped, c.input.cells.size() - 2u);
  const std::string text = report.text();
  EXPECT_NE(text.find("--max-cells"), std::string::npos) << text;
}

// --------------------------------- satellite: workflow --max-bisects cap

TEST(WorkflowCap, SkippedBisectsAreReportedAndAbsentWhenNothingSkipped) {
  Corpus& c = corpus();
  const auto test = c.registry.create(gen::kSuiteTestName);

  core::WorkflowOptions opts;
  opts.baseline = toolchain::mfem_baseline();
  opts.speed_reference = toolchain::mfem_speed_reference();
  opts.k = 1;
  opts.jobs = 4;

  opts.max_bisects = 1;
  const core::WorkflowReport capped =
      core::run_workflow(&c.model, *test, c.space, opts);
  ASSERT_GT(c.study.variable_count(), 1u);
  EXPECT_EQ(capped.bisects.size(), 1u);
  EXPECT_EQ(capped.bisects_skipped, c.study.variable_count() - 1u);
  const std::string capped_text = core::workflow_report_text(capped);
  EXPECT_NE(
      capped_text.find(" variable compilation(s) not bisected "
                       "(--max-bisects 1)"),
      std::string::npos)
      << capped_text;

  opts.max_bisects = 0;
  const core::WorkflowReport full =
      core::run_workflow(&c.model, *test, c.space, opts);
  EXPECT_EQ(full.bisects_skipped, 0u);
  EXPECT_EQ(full.bisects.size(), c.study.variable_count());
  EXPECT_EQ(core::workflow_report_text(full).find("not bisected"),
            std::string::npos);
}

// ------------------------------------------------------- dedup scoring

TEST(DedupScore, PairwisePrecisionAndRecallOverSignatures) {
  std::vector<gen::GroundTruthLabel> labels(4);
  labels[0].kernel = "a";
  labels[0].mechanism = gen::Mechanism::FmaContraction;
  labels[1].kernel = "b";
  labels[1].mechanism = gen::Mechanism::FmaContraction;
  labels[2].kernel = "c";
  labels[2].mechanism = gen::Mechanism::UnsafeMath;
  labels[3].kernel = "d";
  labels[3].mechanism = gen::Mechanism::UnsafeMath;

  // Perfect clustering: signature == mechanism.
  const auto by_mechanism = [](const gen::GroundTruthLabel& l) {
    return std::string(gen::to_string(l.mechanism));
  };
  gen::DedupScore perfect = gen::score_dedup(labels, by_mechanism);
  EXPECT_EQ(perfect.kernels, 4u);
  EXPECT_EQ(perfect.same_mechanism_pairs, 2u);
  EXPECT_EQ(perfect.co_clustered_pairs, 2u);
  EXPECT_EQ(perfect.true_pairs, 2u);
  EXPECT_DOUBLE_EQ(perfect.precision(), 1.0);
  EXPECT_DOUBLE_EQ(perfect.recall(), 1.0);

  // Everything merged: recall stays 1, precision drops to 2/6.
  gen::DedupScore merged =
      gen::score_dedup(labels, [](const gen::GroundTruthLabel&) {
        return std::string("one-bucket");
      });
  EXPECT_DOUBLE_EQ(merged.recall(), 1.0);
  EXPECT_DOUBLE_EQ(merged.precision(), 2.0 / 6.0);

  // Everything split: precision stays 1 (vacuously), recall drops to 0.
  gen::DedupScore split =
      gen::score_dedup(labels, [](const gen::GroundTruthLabel& l) {
        return l.kernel;
      });
  EXPECT_DOUBLE_EQ(split.precision(), 1.0);
  EXPECT_DOUBLE_EQ(split.recall(), 0.0);

  // No labels at all: both denominators empty, both scores 1.
  gen::DedupScore empty = gen::score_dedup({}, by_mechanism);
  EXPECT_DOUBLE_EQ(empty.precision(), 1.0);
  EXPECT_DOUBLE_EQ(empty.recall(), 1.0);
}

}  // namespace
}  // namespace flit
