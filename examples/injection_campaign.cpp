// Fault-injection scenario: quantify how trustworthy Bisect's reports are
// on your own application by injecting controlled floating-point
// perturbations (the Sec. 3.5 methodology) into mini-LULESH and checking
// that every measurable injection is found, exactly or through its
// exported host symbol.
//
// Build & run:  ./build/examples/injection_campaign [stride]

#include <cstdio>
#include <cstdlib>

#include "core/injection.h"
#include "lulesh/domain.h"
#include "toolchain/compiler.h"

using namespace flit;

int main(int argc, char** argv) {
  const std::size_t stride =
      argc > 1 ? static_cast<std::size_t>(std::atol(argv[1])) : 5;

  lulesh::LuleshOptions opts;
  opts.num_elems = 16;
  opts.stop_cycle = 12;
  lulesh::LuleshTest test(opts);

  core::InjectionCampaign campaign(
      &fpsem::global_code_model(), &test,
      {toolchain::gcc(), toolchain::OptLevel::O2, ""});
  campaign.set_scope(lulesh::lulesh_source_files());

  const auto sites = campaign.enumerate_sites();
  std::printf("pass 1: %zu static floating-point instruction sites "
              "reachable from the test\n",
              sites.size());

  auto& model = fpsem::global_code_model();
  std::vector<core::InjectionReport> reports;
  const fpsem::InjectOp ops[] = {fpsem::InjectOp::Add, fpsem::InjectOp::Sub,
                                 fpsem::InjectOp::Mul, fpsem::InjectOp::Div};
  for (std::size_t i = 0; i < sites.size(); i += stride) {
    const auto op = ops[(i / stride) % 4];
    const auto e = core::InjectionExperiment{
        sites[i], op, core::InjectionCampaign::draw_eps(sites[i], op)};
    const auto r = campaign.run_one(e);
    reports.push_back(r);
    std::printf("  site %s:%u in %-36s OP'='%s' eps=%.3f -> %-15s",
                r.exp.site.file.substr(r.exp.site.file.rfind('/') + 1).c_str(),
                r.exp.site.line, model.info(r.exp.site.fn).name.c_str(),
                to_string(r.exp.op), r.exp.eps, to_string(r.verdict));
    if (!r.reported_symbols.empty()) {
      std::printf(" [%s]", r.reported_symbols.front().c_str());
    }
    std::printf(" (%d runs)\n", r.executions);
  }

  const auto s = core::InjectionCampaign::summarize(reports);
  std::printf("\nsummary: %d exact, %d indirect, %d wrong, %d missed, %d "
              "not measurable; precision %.2f, recall %.2f, avg %.1f "
              "executions\n",
              s.exact, s.indirect, s.wrong, s.missed, s.not_measurable,
              s.precision(), s.recall(), s.avg_executions);
  return 0;
}
