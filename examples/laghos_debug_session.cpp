// Field-debugging scenario: the Sec. 3.4 Laghos session replayed through
// the public API.  A user reports that xlc++ -O3 produces (a) NaNs on the
// public branch and (b) an 11%-scale energy jump after the NaN bug is
// fixed.  FLiT Bisect root-causes both in a handful of runs, and the
// epsilon-compare fix is validated.
//
// Build & run:  ./build/examples/laghos_debug_session

#include <cstdio>

#include "core/hierarchy.h"
#include "laghos/hydro.h"
#include "toolchain/compiler.h"

using namespace flit;

namespace {

void print_outcome(const char* title, const core::HierarchicalOutcome& out) {
  std::printf("%s (%d program executions):\n", title, out.executions);
  if (out.crashed) {
    std::printf("  search crashed: %s\n", out.crash_reason.c_str());
    return;
  }
  for (const auto& ff : out.findings) {
    std::printf("  file %-22s Test=%.3e\n", ff.file.c_str(), ff.value);
    for (const auto& sf : ff.symbols) {
      std::printf("    symbol %-28s Test=%.3e\n", sf.symbol.c_str(),
                  sf.value);
    }
    if (!ff.note.empty()) std::printf("    note: %s\n", ff.note.c_str());
  }
}

core::HierarchicalOutcome bisect(const laghos::LaghosTest& test, int k) {
  core::BisectConfig cfg;
  cfg.baseline = toolchain::laghos_trusted_xlc();
  cfg.variable = toolchain::laghos_variable_xlc();
  cfg.scope = laghos::laghos_source_files();
  cfg.k = k;
  core::BisectDriver driver(&fpsem::global_code_model(), &test, cfg);
  return driver.run();
}

}  // namespace

int main() {
  // --- step 1: the public branch produces NaN under xlc++ -O3 ------------
  {
    laghos::HydroOptions opts;
    opts.use_xor_swap_bug = true;  // the public branch
    laghos::LaghosTest test(opts);
    const auto out = bisect(test, /*k=*/0);
    print_outcome("step 1 -- NaN bug on the public branch", out);
    std::printf("  (the XOR-swap macro `a^=b^=a^=b` in these symbols is "
                "undefined behaviour; fixed upstream)\n\n");
  }

  // --- step 2: with the NaN bug fixed, the energy norm still jumps -------
  {
    laghos::LaghosTest test{laghos::HydroOptions{}};
    const auto out = bisect(test, /*k=*/1);
    print_outcome("step 2 -- remaining variability, BisectBiggest k=1",
                  out);
    std::printf("  (the exact `== 0.0` comparison in the viscosity "
                "calibration is the culprit)\n\n");
  }

  // --- step 3: validate the epsilon-compare fix ---------------------------
  {
    laghos::HydroOptions fixed;
    fixed.epsilon_zero_compare = true;
    laghos::LaghosTest test(fixed);
    const auto out = bisect(test, /*k=*/0);
    std::printf("step 3 -- after the epsilon-compare fix: whole-program "
                "Test value = %.3e (%s)\n",
                out.whole_value,
                out.findings.empty() ? "no blame left at this magnitude"
                                     : "residual FMA-level variability");
    for (const auto& ff : out.findings) {
      std::printf("  residual: %s Test=%.3e\n", ff.file.c_str(), ff.value);
    }
  }
  return 0;
}
