// Quickstart: the complete FLiT workflow on a tiny user application.
//
//  1. Write a test (the four-method FLiT API).
//  2. Explore a compilation space: which compilations are bitwise
//     reproducible, and how fast is each?
//  3. Bisect a variability-inducing compilation down to the file and
//     function responsible.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "core/explorer.h"
#include "core/hierarchy.h"
#include "core/registry.h"
#include "fpsem/env.h"
#include "toolchain/compiler.h"

using namespace flit;

// --- the "application": two translation units --------------------------
//
// Every floating-point kernel registers itself in the code model (file +
// symbol) and evaluates its arithmetic through the FpEnv of the binary it
// was linked into.  That is all FLiT needs to search over it.

static const fpsem::FunctionId kNorm = fpsem::register_fn({
    .name = "demo::norm",
    .file = "demo/norm.cpp",
});
static const fpsem::FunctionId kScale = fpsem::register_fn({
    .name = "demo::scale",
    .file = "demo/scale.cpp",
});

double demo_norm(fpsem::EvalContext& ctx, const std::vector<double>& v) {
  fpsem::FpEnv env = ctx.fn(kNorm);
  return env.norm2(v);  // reduction: reassociation-sensitive
}

void demo_scale(fpsem::EvalContext& ctx, std::vector<double>& v, double a) {
  fpsem::FpEnv env = ctx.fn(kScale);
  env.scal(a, v);  // elementwise: value-stable
}

// --- the FLiT test -------------------------------------------------------

class DemoTest final : public core::TestBase {
 public:
  std::string name() const override { return "DemoTest"; }
  std::size_t getInputsPerRun() const override { return 64; }
  std::vector<double> getDefaultInput() const override {
    std::vector<double> v(64);
    for (std::size_t i = 0; i < v.size(); ++i) {
      v[i] = 0.1 * static_cast<double>(i) + 1.0 / (i + 2.0);
    }
    return v;
  }
  core::TestResult run_impl(const std::vector<double>& input,
                            fpsem::EvalContext& ctx) const override {
    std::vector<double> v = input;
    demo_scale(ctx, v, 1.0 / 3.0);
    return static_cast<long double>(demo_norm(ctx, v));
  }
};

FLIT_REGISTER_TEST(DemoTest);

int main() {
  DemoTest test;
  auto* model = &fpsem::global_code_model();

  // --- level 1 + 2: reproducibility vs performance -----------------------
  core::SpaceExplorer explorer(model, toolchain::mfem_baseline(),
                               toolchain::mfem_speed_reference());
  const auto space = toolchain::mfem_study_space();
  const auto study = explorer.explore(test, space);

  std::printf("explored %zu compilations: %zu variable, %zu bitwise "
              "equal\n",
              study.outcomes.size(), study.variable_count(),
              study.outcomes.size() - study.variable_count());
  if (const auto* fe = study.fastest_equal()) {
    std::printf("fastest reproducible: %-40s speedup %.3f\n",
                fe->comp.str().c_str(), fe->speedup);
  }
  if (const auto* fv = study.fastest_variable()) {
    std::printf("fastest variable:     %-40s speedup %.3f (variability "
                "%.2Le)\n",
                fv->comp.str().c_str(), fv->speedup, fv->variability);
  }

  // --- level 3: root-cause one variable compilation ----------------------
  const auto* fv = study.fastest_variable();
  if (fv == nullptr) {
    std::printf("no variability to bisect -- done\n");
    return 0;
  }
  core::BisectConfig cfg;
  cfg.baseline = toolchain::mfem_baseline();
  cfg.variable = fv->comp;
  cfg.scope = {"demo/norm.cpp", "demo/scale.cpp"};
  core::BisectDriver driver(model, &test, cfg);
  const auto out = driver.run();

  std::printf("\nbisect of '%s' (%d program executions):\n",
              fv->comp.str().c_str(), out.executions);
  for (const auto& ff : out.findings) {
    std::printf("  file %-18s (Test = %.3e)\n", ff.file.c_str(), ff.value);
    for (const auto& sf : ff.symbols) {
      std::printf("    symbol %-16s (Test = %.3e)\n", sf.symbol.c_str(),
                  sf.value);
    }
  }
  std::printf("assumptions verified: %s\n",
              out.assumptions_verified ? "yes" : "no");
  return 0;
}
