// Port audit scenario: you maintain the mini-MFEM library, a new machine
// ships the Intel compiler, and you need to know (a) which of your 19
// example workloads reproduce the trusted g++ answers under icpc, (b) the
// fastest icpc configuration that does, and (c) for the ones that cannot
// reproduce, which functions are responsible.
//
// This is the Fig. 1 workflow driven through the public API, scoped to
// one compiler -- the exact situation the paper's introduction motivates.
//
// Build & run:  ./build/examples/mfem_port_audit [example#]

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/workflow.h"
#include "mfemini/examples.h"
#include "toolchain/compiler.h"

using namespace flit;

int main(int argc, char** argv) {
  const int only = argc > 1 ? std::atoi(argv[1]) : 0;

  // The icpc slice of the study space.
  std::vector<toolchain::Compilation> icpc_space;
  for (const auto& c : toolchain::mfem_study_space()) {
    if (c.compiler.family == toolchain::CompilerFamily::Intel) {
      icpc_space.push_back(c);
    }
  }

  core::WorkflowOptions opts;
  opts.baseline = toolchain::mfem_baseline();
  opts.speed_reference = toolchain::mfem_speed_reference();
  opts.run_bisect = true;
  opts.max_bisects = 1;  // root-cause one representative per example
  opts.k = 1;            // the dominant culprit is enough for the audit

  int reproducible = 0, link_step_only = 0, rooted = 0;
  for (int ex = 1; ex <= mfemini::kNumExamples; ++ex) {
    if (only != 0 && ex != only) continue;
    mfemini::MfemExampleTest test(ex);
    const auto report = core::run_workflow(&fpsem::global_code_model(),
                                           test, icpc_space, opts);
    std::printf("example %2d: %3zu/%zu icpc compilations variable", ex,
                report.study.variable_count(),
                report.study.outcomes.size());
    if (const auto* fe = report.fastest_reproducible) {
      ++reproducible;
      std::printf("; fastest reproducible %s (%.3f)",
                  fe->comp.str().c_str(), fe->speedup);
    } else {
      std::printf("; NO reproducible icpc compilation");
    }
    if (!report.bisects.empty()) {
      const auto& b = report.bisects.front().bisect;
      if (b.crashed) {
        std::printf("; bisect crashed (%s)",
                    b.crash_reason.substr(0, 7).c_str());
      } else if (b.nothing_found()) {
        ++link_step_only;
        std::printf("; variability from the link step (vendor libm)");
      } else if (!b.findings.empty()) {
        ++rooted;
        std::printf("; blame: %s", b.findings.front().file.c_str());
        if (!b.findings.front().symbols.empty()) {
          std::printf(" / %s",
                      b.findings.front().symbols.front().symbol.c_str());
        }
      }
    }
    std::printf("\n");
  }
  std::printf(
      "\naudit summary: %d example(s) have a reproducible icpc "
      "configuration, %d are variable purely through the Intel link step, "
      "%d root-caused to a file/function\n",
      reproducible, link_step_only, rooted);
  return 0;
}
