// CGAL-style case study (Sec. 5): compiler optimization changing a
// *discrete* answer.  A convex hull over near-collinear points is run
// across the compilation space; compilations whose FMA contraction flips
// an orientation sign produce hulls with a different number of vertices.
// FLiT reports the variability and Bisect pins it on the orientation
// predicate.
//
// Build & run:  ./build/examples/geometry_hull

#include <cstdio>
#include <map>

#include "core/explorer.h"
#include "core/hierarchy.h"
#include "core/report.h"
#include "geom/predicates.h"
#include "toolchain/semantics_rules.h"

using namespace flit;

int main() {
  geom::HullTest test;
  auto* model = &fpsem::global_code_model();

  // How many hull vertices does each compilation compute?
  std::map<std::size_t, int> size_histogram;
  for (const auto& c : toolchain::mfem_study_space()) {
    auto ctx = fpsem::uniform_context(fpsem::FnBinding{
        toolchain::derive_semantics(c), toolchain::derive_cost(c)});
    const auto hull =
        geom::convex_hull(ctx, geom::near_collinear_cloud(48));
    ++size_histogram[hull.size()];
  }
  std::printf("hull vertex count across the 244-compilation space:\n");
  for (const auto& [size, count] : size_histogram) {
    std::printf("  %zu vertices: %d compilations\n", size, count);
  }
  if (size_histogram.size() > 1) {
    std::printf("=> compiler optimization changed a discrete geometric "
                "answer, as the paper observed on CGAL\n\n");
  }

  // FLiT view: variability + root cause.
  core::SpaceExplorer explorer(model, toolchain::mfem_baseline(),
                               toolchain::mfem_speed_reference());
  const auto space = toolchain::mfem_study_space();
  const auto study = explorer.explore(test, space);
  std::printf("%s\n\n", core::study_summary(study).c_str());

  if (const auto* fv = study.fastest_variable()) {
    core::BisectConfig cfg;
    cfg.baseline = toolchain::mfem_baseline();
    cfg.variable = fv->comp;
    cfg.scope = geom::geom_source_files();
    core::BisectDriver driver(model, &test, cfg);
    std::printf("bisect of %s:\n%s", fv->comp.str().c_str(),
                core::bisect_report(driver.run()).c_str());
  }
  return 0;
}
