// flit — command-line front end over the library, mirroring the upstream
// tool's UX on the simulated toolchain:
//
//   flit list                      registered FLiT tests
//   flit explore <test> [--csv]    run the 244-compilation study
//   flit bisect <test> <compilation...> [--k N] [--digits D]
//                                  root-cause one compilation
//   flit workflow <test>           the full Fig. 1 pipeline
//
// <compilation...> is e.g.:  g++ -O2 -funsafe-math-optimizations
//
// All registered applications (mini-MFEM, Laghos, LULESH, geometry, the
// parallel study) are linked in, so their tests are available by name.
//
// Error handling: main catches every escaping exception and exits 1 with
// the message on stderr (a malformed database or a study abort must never
// reach std::terminate); numeric options are parsed strictly and
// value-taking options consume their argument.

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "blame/campaign.h"
#include "core/explorer.h"
#include "core/hierarchy.h"
#include "core/mixer.h"
#include "core/parallel.h"
#include "core/registry.h"
#include "core/report.h"
#include "core/resultsdb.h"
#include "core/workflow.h"
#include "dist/coordinator.h"
#include "dist/supervisor.h"
#include "gen/generator.h"
#include "gen/suite.h"
#include "geom/predicates.h"
#include "laghos/hydro.h"
#include "lulesh/domain.h"
#include "mfemini/examples.h"
#include "obs/export.h"
#include "obs/session.h"
#include "par/study.h"
#include "serve/request.h"
#include "serve/service.h"
#include "toolchain/compiler.h"

using namespace flit;

namespace {

/// Registers the bundled application tests under stable names.
void register_bundled_tests() {
  auto& reg = core::global_test_registry();
  for (int ex = 1; ex <= mfemini::kNumExamples; ++ex) {
    reg.add("MFEM_ex" + std::to_string(ex), [ex] {
      return std::unique_ptr<core::TestBase>(
          std::make_unique<mfemini::MfemExampleTest>(ex));
    });
  }
  reg.add("Laghos", [] {
    return std::unique_ptr<core::TestBase>(
        std::make_unique<laghos::LaghosTest>());
  });
  reg.add("LULESH", [] {
    return std::unique_ptr<core::TestBase>(
        std::make_unique<lulesh::LuleshTest>());
  });
  reg.add("GeomHull", [] {
    return std::unique_ptr<core::TestBase>(
        std::make_unique<geom::HullTest>());
  });
  reg.add("ParPoisson", [] {
    return std::unique_ptr<core::TestBase>(
        std::make_unique<par::ParallelPoissonTest>(24, 4));
  });
}

int usage() {
  std::fprintf(
      stderr,
      "usage: flit list\n"
      "       flit explore <test> [--csv] [--db file.tsv] [--resume]\n"
      "                    [--jobs N] [--retries N]\n"
      "                    [--shards N] [--shard-db-dir dir]\n"
      "                    [--steal|--no-steal] [--steal-grain N]\n"
      "                    [--placement static|cost|affinity]\n"
      "                    [--cost-profile file.tsv]\n"
      "                    [--max-restarts N] [--stall-deadline C]\n"
      "                    [--allow-partial]\n"
      "                    [--keep-going|--no-keep-going]\n"
      "                    [--trace-out file] [--metrics-out file]\n"
      "                    [--gen-seed N] [--gen-count N] "
      "[--gen-recipes r,..]\n"
      "       flit bisect <test> <compiler> <-ON> [flag...] "
      "[--k N] [--digits D]\n"
      "                    [--trace-out file] [--metrics-out file]\n"
      "       flit workflow <test> [--max-bisects N] [--k N] [--digits D]\n"
      "                    [--jobs N] [--retries N] [--shards N]\n"
      "                    [--steal|--no-steal] [--steal-grain N]\n"
      "                    [--placement static|cost|affinity]\n"
      "                    [--cost-profile file.tsv]\n"
      "                    [--max-restarts N] [--stall-deadline C]\n"
      "                    [--allow-partial]\n"
      "                    [--keep-going|--no-keep-going]\n"
      "                    [--trace-out file] [--metrics-out file]\n"
      "                    [--gen-seed N] [--gen-count N] "
      "[--gen-recipes r,..]\n"
      "       flit blame [<test>] [--db file.tsv] [--k N] [--digits D]\n"
      "                    [--jobs N] [--shards N]\n"
      "                    [--steal|--no-steal] [--steal-grain N]\n"
      "                    [--memo|--no-memo] [--max-cells N] [--pairs N]\n"
      "                    [--trace-out file] [--metrics-out file]\n"
      "                    [--gen-seed N] [--gen-count N] "
      "[--gen-recipes r,..]\n"
      "       flit mix <test> <tolerance>\n"
      "       flit gen [--gen-seed N] [--gen-count N] [--gen-recipes r,..]\n"
      "                    [--describe | --list | --emit <kernel>]\n"
      "       flit serve <requests.jsonl|-> [--state-dir dir]\n"
      "                    [--stream-out dir] [--cache-budget BYTES]\n"
      "                    [--shards N] [--jobs N] [--steal|--no-steal]\n"
      "                    [--max-inflight N] [--checkpoint-batch N]\n"
      "                    [--resume] [--retries N]\n"
      "                    [--keep-going|--no-keep-going]\n"
      "                    [--trace-out file] [--metrics-out file]\n"
      "                    [--gen-seed N] [--gen-count N] "
      "[--gen-recipes r,..]\n"
      "\n"
      "--jobs N        parallel execution lanes for explore/workflow\n"
      "                (default: the FLIT_JOBS environment variable if\n"
      "                set, else the hardware thread count; results are\n"
      "                identical at any jobs count)\n"
      "--shards N      partition the compilation space across N simulated\n"
      "                ranks, each with its own compilation cache (and,\n"
      "                with --shard-db-dir, its own checkpoint file); the\n"
      "                merged results are identical at any shard count\n"
      "--shard-db-dir  directory for per-shard checkpoint databases\n"
      "                (shard-<r>-of-<N>.tsv); with --resume, shards are\n"
      "                prefilled from these files\n"
      "--steal         rebalance shards by work stealing: an exhausted\n"
      "                shard steals trailing sub-ranges from the\n"
      "                most-loaded one (default; results are identical\n"
      "                either way -- --no-steal restores the static\n"
      "                partition)\n"
      "--steal-grain N items per steal claim (default 16); smaller grains\n"
      "                rebalance finer at more claim overhead\n"
      "--placement P   how the space is split across shards: 'static'\n"
      "                (contiguous index split, default), 'cost'\n"
      "                (predicted-cost LPT balance), or 'affinity' (cost\n"
      "                balance that keeps fingerprint-equal compilations\n"
      "                on one shard, so each is compiled once per fleet);\n"
      "                merged results are identical under every policy\n"
      "--cost-profile  prior-run results database refining the placement\n"
      "                cost model with measured per-compilation costs\n"
      "--max-restarts  restarts the fleet supervisor grants each shard\n"
      "                before declaring it dead (default 2); supervision\n"
      "                engages when FLIT_FAULTS arms a shard/stall site\n"
      "--stall-deadline modeled-cycle deadline at which a stalled shard is\n"
      "                detected (default: the restart backoff unit)\n"
      "--allow-partial after the restart budget is exhausted, record the\n"
      "                unrecoverable cells as 'degraded' and complete the\n"
      "                study instead of aborting; a later --resume re-runs\n"
      "                degraded rows and converges to the unfaulted bytes\n"
      "--db file.tsv   record outcomes into a results database,\n"
      "                checkpointing incrementally (with --shards: the\n"
      "                converged database, written after the merge)\n"
      "--resume        skip (test, compilation) rows already in --db\n"
      "                (with --shards: in the per-shard databases)\n"
      "--retries N     attempts per compilation before quarantine "
      "(default 1)\n"
      "--keep-going    record per-compilation failures and continue\n"
      "                (default; --no-keep-going aborts on the first)\n"
      "--trace-out     write the deterministic span trace: Chrome\n"
      "                trace_event JSON (load in ui.perfetto.dev), or one\n"
      "                JSON object per event when the file ends in .jsonl;\n"
      "                event content is identical at any --jobs count\n"
      "--metrics-out   write the metrics snapshot as JSON and print the\n"
      "                summary table to stderr; telemetry never alters\n"
      "                results\n"
      "--gen-seed N    install the generated synthetic-kernel suite from\n"
      "                seed N before the command runs: one test per kernel\n"
      "                plus the aggregate 'GenSuite' test; the suite is a\n"
      "                pure function of --gen-seed/--gen-count/\n"
      "                --gen-recipes, byte-identical on every shard of any\n"
      "                fleet (default seed 1; any --gen-* flag enables)\n"
      "--gen-count N   kernels to generate (default 16)\n"
      "--gen-recipes   comma-separated recipe subset: fma, reduce, branch,\n"
      "                libm, subnormal, unsafe (default: all, rotating)\n"
      "\n"
      "workflow bisect phase: --max-bisects caps the Level 3 searches (0 =\n"
      "bisect every variable compilation; default 3, skipped ones are\n"
      "reported), --k keeps the k biggest culprits per search (0 = all;\n"
      "default 1), --digits restricts comparisons to D significant digits\n"
      "\n"
      "blame runs the dedup bisect campaign over every variability-flagged\n"
      "cell -- of a live study of <test>, of a --db results database (all\n"
      "its tests, or <test> only), or of the --gen-* corpus -- sharing one\n"
      "probe memo across all bisects, clustering the outcomes into blame\n"
      "sites and re-verifying each site with its minimal adversarial\n"
      "compilation pair; the clustered report is bitwise-identical at any\n"
      "--shards x --jobs x --steal x --memo mix (see docs/blame-dedup.md)\n"
      "--memo          share probe answers across bisects (default;\n"
      "                --no-memo re-runs every probe -- same report bytes,\n"
      "                more real executions)\n"
      "--max-cells N   cap the cells bisected (0 = all, the default)\n"
      "--pairs N       adversarial candidate pairs tried per cluster\n"
      "                (default 4)\n"
      "\n"
      "gen prints the generated space without running it: --describe\n"
      "(default) writes the ground-truth label TSV (kernel, recipe,\n"
      "mechanism, hazard sites, seed, index, file, expected symbol),\n"
      "--list the kernel names, --emit <kernel> one kernel's annotated\n"
      "pseudo-source; see docs/generated-workloads.md\n"
      "\n"
      "serve runs a JSONL stream of study requests (one JSON object per\n"
      "line: {\"id\":..,\"test\":..[,\"tenant\"][,\"mode\"][,\"compilers\"]\n"
      "[,\"limit\"]}) as a multi-tenant service sharing one compilation\n"
      "cache; see docs/study-service.md\n"
      "--state-dir     per-request converged databases (<id>.tsv), CSVs\n"
      "                and workflow reports; with --resume, requests are\n"
      "                prefilled from their checkpoints\n"
      "--stream-out    per-tenant incremental event streams\n"
      "                (<tenant>.jsonl); without it events print to stdout\n"
      "--cache-budget  shared-cache cap in approximate object bytes\n"
      "                (0 retains nothing); results are identical at any\n"
      "                budget -- eviction only changes hit rates\n"
      "--max-inflight  studies multiplexed concurrently (default 4)\n"
      "--checkpoint-batch items per scheduler claim and per durable\n"
      "                checkpoint (default 32)\n"
      "\n"
      "FLIT_FAULTS=site:rate[:seed][,...] arms the deterministic fault\n"
      "injector (sites: compile, link, run, kill, shard, stall); see "
      "docs/fault-tolerance.md\n");
  return 2;
}

/// Strict numeric parsing: the whole argument must be a number (atoi's
/// silent 0 for garbage turned `--jobs x` into a serial run).
long parse_long(const char* flag, const char* s) {
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  if (s[0] == '\0' || end == nullptr || *end != '\0') {
    throw std::invalid_argument(std::string(flag) + ": expected an integer, "
                                "got '" + s + "'");
  }
  return v;
}

unsigned parse_jobs(const char* flag, const char* s) {
  const long v = parse_long(flag, s);
  if (v < 1) {
    throw std::invalid_argument(std::string(flag) +
                                ": expected a positive integer, got '" +
                                std::string(s) + "'");
  }
  return static_cast<unsigned>(v);
}

int parse_nonneg(const char* flag, const char* s) {
  const long v = parse_long(flag, s);
  if (v < 0) {
    throw std::invalid_argument(std::string(flag) +
                                ": expected a non-negative integer, got '" +
                                std::string(s) + "'");
  }
  return static_cast<int>(v);
}

double parse_nonneg_double(const char* flag, const char* s) {
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (s[0] == '\0' || end == nullptr || *end != '\0' || v < 0.0) {
    throw std::invalid_argument(std::string(flag) +
                                ": expected a non-negative number, got '" +
                                std::string(s) + "'");
  }
  return v;
}

/// Strict placement-policy parsing: only the names place_space knows.
dist::PlacementPolicy parse_placement(const char* flag, const char* s) {
  const auto p = dist::placement_policy_from(s);
  if (!p.has_value()) {
    throw std::invalid_argument(std::string(flag) +
                                ": expected static|cost|affinity, got '" +
                                s + "'");
  }
  return *p;
}

/// Returns the value of a value-taking option, consuming it (advances i).
const char* option_value(const char* flag, char** argv, int argc, int* i) {
  if (*i + 1 >= argc) {
    throw std::invalid_argument(std::string(flag) + ": missing value");
  }
  ++*i;
  return argv[*i];
}

/// Strict seed parsing for --gen-seed: a positive integer (0 is reserved
/// -- the generator's streams key on seed, and a silent 0 would alias
/// every "garbage" seed onto one suite).
std::uint64_t parse_seed(const char* flag, const char* s) {
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (s[0] == '\0' || s[0] == '-' || end == nullptr || *end != '\0' ||
      errno == ERANGE || v == 0) {
    throw std::invalid_argument(std::string(flag) +
                                ": expected a positive integer, got '" +
                                std::string(s) + "'");
  }
  return static_cast<std::uint64_t>(v);
}

/// The --gen-seed / --gen-count / --gen-recipes family shared by explore,
/// workflow and serve.  Any of the three enables the generated suite;
/// install() then registers its kernels into the global code model and
/// test registry before the command dispatches, so the generated tests
/// resolve exactly like the bundled applications.
struct GenArgs {
  bool enabled = false;
  gen::GenSpec spec;

  /// Consumes the option when it is one of ours.
  bool parse(char** argv, int argc, int* i) {
    if (std::strcmp(argv[*i], "--gen-seed") == 0) {
      spec.seed =
          parse_seed("--gen-seed", option_value("--gen-seed", argv, argc, i));
      enabled = true;
      return true;
    }
    if (std::strcmp(argv[*i], "--gen-count") == 0) {
      spec.count = parse_jobs("--gen-count",
                              option_value("--gen-count", argv, argc, i));
      enabled = true;
      return true;
    }
    if (std::strcmp(argv[*i], "--gen-recipes") == 0) {
      spec.recipes = gen::recipes_from_csv(
          option_value("--gen-recipes", argv, argc, i));
      enabled = true;
      return true;
    }
    return false;
  }

  void install() const {
    if (!enabled) return;
    spec.validate();
    gen::install_suite(spec, fpsem::global_code_model(),
                       &core::global_test_registry());
  }
};

/// The --trace-out / --metrics-out pair shared by explore, bisect and
/// workflow.  Telemetry is strictly off the result path: stdout and every
/// database byte are identical with or without these flags.
struct TelemetryArgs {
  std::string trace_out;
  std::string metrics_out;

  /// Consumes the option when it is one of ours.
  bool parse(char** argv, int argc, int* i) {
    if (std::strcmp(argv[*i], "--trace-out") == 0) {
      trace_out = option_value("--trace-out", argv, argc, i);
      return true;
    }
    if (std::strcmp(argv[*i], "--metrics-out") == 0) {
      metrics_out = option_value("--metrics-out", argv, argc, i);
      return true;
    }
    return false;
  }
};

void telemetry_begin(const TelemetryArgs& t) {
  if (!t.trace_out.empty()) obs::tracer().set_enabled(true);
}

void write_file(const char* flag, const std::string& path,
                const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw std::runtime_error(std::string(flag) + ": cannot write '" + path +
                             "'");
  }
  out << content;
}

/// Exports the trace and the metrics snapshot after the command ran (the
/// pools have joined, so the drain is quiescent).
void telemetry_finish(const TelemetryArgs& t) {
  if (!t.trace_out.empty()) {
    const std::vector<obs::TraceEvent> events = obs::tracer().drain_sorted();
    const bool jsonl =
        t.trace_out.size() >= 6 &&
        t.trace_out.compare(t.trace_out.size() - 6, 6, ".jsonl") == 0;
    write_file("--trace-out", t.trace_out,
               jsonl ? obs::events_jsonl(events)
                     : obs::chrome_trace_json(events));
  }
  if (!t.metrics_out.empty()) {
    const obs::MetricsSnapshot snap = obs::metrics().snapshot();
    write_file("--metrics-out", t.metrics_out, snap.json());
    std::fputs(snap.table().c_str(), stderr);
  }
}

long double parse_longdouble(const char* what, const char* s) {
  char* end = nullptr;
  const long double v = strtold(s, &end);
  if (s[0] == '\0' || end == nullptr || *end != '\0') {
    throw std::invalid_argument(std::string(what) +
                                ": expected a number, got '" + s + "'");
  }
  return v;
}

/// Parses "<compiler> <-ON> [flags...]" from argv[from..to).
bool parse_compilation(char** argv, int from, int to,
                       toolchain::Compilation* out) {
  if (to - from < 2) return false;
  const std::string name = argv[from];
  for (const auto* spec : {&toolchain::gcc(), &toolchain::clang(),
                           &toolchain::icpc(), &toolchain::xlc()}) {
    if (spec->name == name) out->compiler = *spec;
  }
  if (out->compiler.name != name) return false;
  const std::string opt = argv[from + 1];
  if (opt == "-O0") {
    out->opt = toolchain::OptLevel::O0;
  } else if (opt == "-O1") {
    out->opt = toolchain::OptLevel::O1;
  } else if (opt == "-O2") {
    out->opt = toolchain::OptLevel::O2;
  } else if (opt == "-O3") {
    out->opt = toolchain::OptLevel::O3;
  } else {
    return false;
  }
  std::string flag;
  for (int i = from + 2; i < to; ++i) {
    if (!flag.empty()) flag += ' ';
    flag += argv[i];
  }
  out->flag = flag;
  return true;
}

int cmd_list() {
  for (const auto& name : core::global_test_registry().names()) {
    std::printf("%s\n", name.c_str());
  }
  return 0;
}

struct ExploreArgs {
  bool csv = false;
  std::string db_path;
  bool resume = false;
  unsigned jobs = 0;
  int shards = 1;
  std::string shard_db_dir;
  bool steal = true;
  std::size_t steal_grain = 16;
  dist::PlacementPolicy placement = dist::PlacementPolicy::Static;
  std::string cost_profile;
  core::RetryPolicy retry;
  bool keep_going = true;
  int max_restarts = 2;
  double stall_deadline = 0.0;
  bool allow_partial = false;
};

int cmd_explore(const std::string& test_name, const ExploreArgs& args) {
  auto& reg = core::global_test_registry();
  if (!reg.contains(test_name)) {
    std::fprintf(stderr, "unknown test '%s' (try: flit list)\n",
                 test_name.c_str());
    return 1;
  }
  const bool sharded = args.shards > 1 || !args.shard_db_dir.empty();
  if (args.resume && !sharded && args.db_path.empty()) {
    std::fprintf(stderr, "--resume requires --db\n");
    return 2;
  }
  if (args.resume && sharded && args.shard_db_dir.empty()) {
    std::fprintf(stderr, "--resume with --shards requires --shard-db-dir\n");
    return 2;
  }
  const auto test = reg.create(test_name);
  const auto space = toolchain::mfem_study_space();

  std::optional<core::ResultsDb> db;
  if (!args.db_path.empty()) db.emplace(std::filesystem::path(args.db_path));

  core::StudyResult study;
  if (sharded) {
    dist::ShardOptions sopts;
    sopts.shards = args.shards;
    sopts.jobs = args.jobs >= 1 ? args.jobs : 1;
    sopts.retry = args.retry;
    sopts.keep_going = args.keep_going;
    sopts.shard_db_dir = args.shard_db_dir;
    sopts.steal = args.steal;
    sopts.steal_grain = args.steal_grain;
    sopts.placement = args.placement;
    sopts.cost_profile = args.cost_profile;
    sopts.db = db.has_value() ? &*db : nullptr;
    // Sharded runs go through the fleet supervisor: with no rank-level
    // fault site armed it delegates to the plain coordinator (identical
    // bytes, full concurrency); with FLIT_FAULTS=shard/stall it contains
    // rank deaths and stalls per --max-restarts / --allow-partial.
    dist::SupervisorOptions vopts;
    vopts.shard = sopts;
    vopts.max_restarts = args.max_restarts;
    vopts.stall_deadline = args.stall_deadline;
    vopts.allow_partial = args.allow_partial;
    dist::FleetSupervisor fleet(&fpsem::global_code_model(),
                                toolchain::mfem_baseline(),
                                toolchain::mfem_speed_reference(), vopts);
    const dist::ShardedStudy sharded_study =
        args.resume ? fleet.resume(*test, space) : fleet.run(*test, space);
    study = sharded_study.study;
    std::fputs(dist::shard_report_text(sharded_study).c_str(), stderr);
  } else {
    core::SpaceExplorer explorer(&fpsem::global_code_model(),
                                 toolchain::mfem_baseline(),
                                 toolchain::mfem_speed_reference(),
                                 args.jobs);
    core::ExploreOptions opts;
    opts.retry = args.retry;
    opts.keep_going = args.keep_going;
    if (db.has_value()) {
      opts.db = &*db;
      opts.resume = args.resume;
    }
    study = explorer.explore(*test, space, opts);
  }

  if (db.has_value()) {
    std::fprintf(stderr, "recorded %zu outcomes into %s\n",
                 study.outcomes.size(), args.db_path.c_str());
  }
  if (args.csv) {
    std::fputs(core::study_csv(study).c_str(), stdout);
  } else {
    std::printf("%s\n", core::study_summary(study).c_str());
    std::fputs(core::failure_report(study).c_str(), stdout);
  }
  return 0;
}

int cmd_bisect(const std::string& test_name,
               const toolchain::Compilation& comp, int k, int digits) {
  auto& reg = core::global_test_registry();
  if (!reg.contains(test_name)) {
    std::fprintf(stderr, "unknown test '%s'\n", test_name.c_str());
    return 1;
  }
  const auto test = reg.create(test_name);
  core::BisectConfig cfg;
  cfg.baseline = comp.compiler.family == toolchain::CompilerFamily::XLC
                     ? toolchain::laghos_trusted_xlc()
                     : toolchain::mfem_baseline();
  cfg.variable = comp;
  cfg.k = k;
  cfg.digits = digits;
  core::BisectDriver driver(&fpsem::global_code_model(), test.get(), cfg);
  std::fputs(core::bisect_report(driver.run()).c_str(), stdout);
  return 0;
}

struct WorkflowArgs {
  unsigned jobs = 0;
  std::size_t max_bisects = 3;  ///< Level 3 cap (0 = bisect everything)
  int k = 1;
  int digits = 0;
  int shards = 1;
  bool steal = true;
  std::size_t steal_grain = 16;
  dist::PlacementPolicy placement = dist::PlacementPolicy::Static;
  std::string cost_profile;
  core::RetryPolicy retry;
  bool keep_going = true;
  int max_restarts = 2;
  double stall_deadline = 0.0;
  bool allow_partial = false;
};

int cmd_workflow(const std::string& test_name, const WorkflowArgs& args) {
  auto& reg = core::global_test_registry();
  if (!reg.contains(test_name)) {
    std::fprintf(stderr, "unknown test '%s'\n", test_name.c_str());
    return 1;
  }
  const auto test = reg.create(test_name);
  core::WorkflowOptions opts;
  opts.baseline = toolchain::mfem_baseline();
  opts.speed_reference = toolchain::mfem_speed_reference();
  opts.max_bisects = args.max_bisects;
  opts.k = args.k;
  opts.digits = args.digits;
  opts.jobs = args.jobs;
  opts.explore.retry = args.retry;
  opts.explore.keep_going = args.keep_going;
  // With --shards the Level 1/2 exploration runs on the sharded engine;
  // the merged study is bitwise-identical, so the bisect phase and report
  // are oblivious.  The coordinator outlives run_workflow's use of the
  // override.
  std::optional<dist::FleetSupervisor> fleet;
  if (args.shards > 1) {
    dist::SupervisorOptions vopts;
    vopts.shard.shards = args.shards;
    vopts.shard.jobs = args.jobs >= 1 ? args.jobs : 1;
    vopts.shard.steal = args.steal;
    vopts.shard.steal_grain = args.steal_grain;
    vopts.shard.placement = args.placement;
    vopts.shard.cost_profile = args.cost_profile;
    vopts.shard.retry = args.retry;
    vopts.shard.keep_going = args.keep_going;
    vopts.max_restarts = args.max_restarts;
    vopts.stall_deadline = args.stall_deadline;
    vopts.allow_partial = args.allow_partial;
    fleet.emplace(&fpsem::global_code_model(), opts.baseline,
                  opts.speed_reference, vopts);
    opts.explore_override = fleet->explore_override();
  }
  const auto report = core::run_workflow(
      &fpsem::global_code_model(), *test, toolchain::mfem_study_space(),
      opts);
  std::fputs(core::workflow_report_text(report).c_str(), stdout);
  return 0;
}

struct BlameArgs {
  std::string test;     ///< optional with --db (then: every db test)
  std::string db_path;  ///< enumerate cells from a results database
  int k = 0;
  int digits = 0;
  unsigned jobs = 0;
  int shards = 1;
  bool steal = true;
  std::size_t steal_grain = 4;
  bool memo = true;
  std::size_t max_cells = 0;
  std::size_t pairs = 4;
};

int cmd_blame(const BlameArgs& args) {
  auto& reg = core::global_test_registry();
  const auto space = toolchain::mfem_study_space();
  blame::CampaignInput input;
  if (!args.db_path.empty()) {
    const core::ResultsDb db(args.db_path);
    input = blame::input_from_db(db, space);
    if (!args.test.empty()) {
      blame::CampaignInput filtered;
      filtered.dropped_rows = input.dropped_rows;
      for (const blame::Cell& c : input.cells) {
        if (c.test == args.test) filtered.cells.push_back(c);
      }
      if (const auto it = input.equal_comps.find(args.test);
          it != input.equal_comps.end()) {
        filtered.equal_comps[args.test] = it->second;
      }
      input = std::move(filtered);
    }
  } else {
    if (!reg.contains(args.test)) {
      std::fprintf(stderr, "unknown test '%s'\n", args.test.c_str());
      return 1;
    }
    const auto test = reg.create(args.test);
    const core::SpaceExplorer explorer(
        &fpsem::global_code_model(), toolchain::mfem_baseline(),
        toolchain::mfem_speed_reference(), args.jobs >= 1 ? args.jobs : 1);
    input = blame::input_from_study(explorer.explore(*test, space));
  }
  blame::BlameOptions opts;
  opts.baseline = toolchain::mfem_baseline();
  opts.k = args.k;
  opts.digits = args.digits;
  opts.memo = args.memo;
  opts.max_cells = args.max_cells;
  opts.adversarial_attempts = args.pairs;
  opts.shard.shards = args.shards;
  opts.shard.jobs = args.jobs >= 1 ? args.jobs : 1;
  opts.shard.steal = args.steal;
  opts.shard.grain = args.steal_grain;
  const blame::BlameReport report =
      blame::run_campaign(&fpsem::global_code_model(), reg, input, opts);
  // The deterministic report goes to stdout; the scheduling-dependent
  // accounting (memo hit rate, steals) to stderr, so piped output is
  // byte-stable at any shards x jobs mix.
  std::fputs(report.text().c_str(), stdout);
  std::fputs(report.stats_text().c_str(), stderr);
  return 0;
}

int cmd_mix(const std::string& test_name, long double tolerance) {
  auto& reg = core::global_test_registry();
  if (!reg.contains(test_name)) {
    std::fprintf(stderr, "unknown test '%s'\n", test_name.c_str());
    return 1;
  }
  const auto test = reg.create(test_name);
  core::MixerConfig cfg;
  cfg.baseline = toolchain::mfem_baseline();
  cfg.aggressive = {toolchain::gcc(), toolchain::OptLevel::O3,
                    "-funsafe-math-optimizations"};
  cfg.tolerance = tolerance;
  const auto rec = core::recommend_fast_math_mix(
      &fpsem::global_code_model(), *test, cfg);
  std::printf("fast-math mix for %s at tolerance %.3Le (%d runs):\n",
              test_name.c_str(), tolerance, rec.executions);
  std::printf("  compile aggressively (%zu files):\n",
              rec.fast_files.size());
  for (const auto& f : rec.fast_files) std::printf("    %s\n", f.c_str());
  std::printf("  keep on the trusted compilation (%zu files):\n",
              rec.precise_files.size());
  for (const auto& f : rec.precise_files) {
    std::printf("    %s\n", f.c_str());
  }
  std::printf("  mixed variability %.3Le, modeled speedup %.3fx\n",
              rec.variability, rec.speedup());
  return 0;
}

/// Strict byte-count parsing for --cache-budget: a plain non-negative
/// integer (0 is meaningful: retain nothing).
std::uint64_t parse_bytes(const char* flag, const char* s) {
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (s[0] == '\0' || s[0] == '-' || end == nullptr || *end != '\0' ||
      errno == ERANGE) {
    throw std::invalid_argument(std::string(flag) +
                                ": expected a non-negative byte count, "
                                "got '" + std::string(s) + "'");
  }
  return static_cast<std::uint64_t>(v);
}

struct ServeArgs {
  serve::ServeOptions opts;
};

int cmd_serve(const std::string& requests_path, ServeArgs& args) {
  // Admission reads the whole stream up front: a service must reject a
  // malformed request file at the door, before any tenant's study runs.
  std::vector<serve::StudyRequest> requests;
  if (requests_path == "-") {
    requests = serve::read_requests(std::cin);
  } else {
    std::ifstream in(requests_path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr,
                   "serve: cannot read request file '%s' (must exist and "
                   "be readable)\n",
                   requests_path.c_str());
      return 2;
    }
    requests = serve::read_requests(in);
  }
  if (requests.empty()) {
    std::fprintf(stderr, "serve: no requests in '%s'\n",
                 requests_path.c_str());
    return 2;
  }

  // Without --stream-out the per-tenant event streams interleave on
  // stdout, each line prefixed by its tenant.
  if (args.opts.stream_dir.empty()) {
    args.opts.event_sink = [](const std::string& tenant,
                              const std::string& line) {
      std::printf("%s\t%s\n", tenant.c_str(), line.c_str());
    };
  }

  const auto space = toolchain::mfem_study_space();
  serve::StudyService service(&fpsem::global_code_model(),
                              toolchain::mfem_baseline(),
                              toolchain::mfem_speed_reference(), space,
                              std::move(args.opts));
  const serve::ServeReport report = service.run(requests);

  for (const serve::RequestReport& r : report.requests) {
    if (r.deduplicated) {
      std::fprintf(stderr,
                   "request %s (tenant %s): deduplicated onto %s, "
                   "items=%zu variable=%zu failed=%zu\n",
                   r.id.c_str(), r.tenant.c_str(), r.primary.c_str(),
                   r.items, r.variable, r.failed);
    } else {
      std::fprintf(stderr,
                   "request %s (tenant %s): test=%s items=%zu "
                   "variable=%zu failed=%zu batches=%zu cache "
                   "hits=%llu misses=%llu\n",
                   r.id.c_str(), r.tenant.c_str(), r.test.c_str(), r.items,
                   r.variable, r.failed, r.batches,
                   static_cast<unsigned long long>(r.cache.hits),
                   static_cast<unsigned long long>(r.cache.misses));
    }
  }
  const auto& c = report.cache;
  std::fprintf(stderr,
               "served %zu requests (%zu deduplicated): cache hits=%llu "
               "misses=%llu hit-rate=%.3f evictions=%llu resident=%llu "
               "bytes; fleet cycles %.0f\n",
               report.requests.size(), report.deduplicated,
               static_cast<unsigned long long>(c.hits),
               static_cast<unsigned long long>(c.misses), c.hit_rate(),
               static_cast<unsigned long long>(c.evictions),
               static_cast<unsigned long long>(report.cache_resident_bytes),
               report.fleet_cycles);
  return 0;
}

/// `flit gen`: print the generated space (labels, names, or one kernel's
/// pseudo-source) without running a study over it.
int cmd_gen(const gen::GenSpec& spec, const std::string& mode,
            const std::string& emit_name) {
  const std::vector<gen::GeneratedKernel> kernels = gen::generate(spec);
  if (mode == "list") {
    for (const auto& k : kernels) std::printf("%s\n", k.name.c_str());
    return 0;
  }
  if (mode == "emit") {
    for (const auto& k : kernels) {
      if (k.name == emit_name) {
        std::fputs(gen::emit_text(k).c_str(), stdout);
        return 0;
      }
    }
    std::fprintf(stderr,
                 "gen: no kernel named '%s' in this space (try: flit gen "
                 "--list with the same --gen-* options)\n",
                 emit_name.c_str());
    return 1;
  }
  std::fputs(gen::describe_tsv(kernels).c_str(), stdout);
  return 0;
}

int dispatch(int argc, char** argv) {
  // Force the injector's FLIT_FAULTS parse now: a malformed spec should
  // die here as `flit: error: FLIT_FAULTS: ...`, not surface later
  // wrapped in a study-abort diagnostic.
  (void)core::FaultInjector::global();
  register_bundled_tests();
  if (argc < 2) return usage();
  const std::string cmd = argv[1];

  if (cmd == "list") return cmd_list();

  if (cmd == "gen") {
    GenArgs gargs;
    std::string mode = "describe";
    std::string emit_name;
    for (int i = 2; i < argc; ++i) {
      if (gargs.parse(argv, argc, &i)) {
        // consumed
      } else if (std::strcmp(argv[i], "--describe") == 0) {
        mode = "describe";
      } else if (std::strcmp(argv[i], "--list") == 0) {
        mode = "list";
      } else if (std::strcmp(argv[i], "--emit") == 0) {
        mode = "emit";
        emit_name = option_value("--emit", argv, argc, &i);
      } else {
        std::fprintf(stderr, "gen: unknown option '%s'\n", argv[i]);
        return usage();
      }
    }
    gargs.spec.validate();
    return cmd_gen(gargs.spec, mode, emit_name);
  }

  if (cmd == "explore") {
    if (argc < 3) return usage();
    ExploreArgs args;
    TelemetryArgs tel;
    GenArgs gargs;
    args.jobs = core::default_jobs();
    for (int i = 3; i < argc; ++i) {
      if (tel.parse(argv, argc, &i)) {
        // consumed
      } else if (gargs.parse(argv, argc, &i)) {
        // consumed
      } else if (std::strcmp(argv[i], "--csv") == 0) {
        args.csv = true;
      } else if (std::strcmp(argv[i], "--db") == 0) {
        args.db_path = option_value("--db", argv, argc, &i);
      } else if (std::strcmp(argv[i], "--jobs") == 0) {
        args.jobs = parse_jobs("--jobs", option_value("--jobs", argv, argc,
                                                      &i));
      } else if (std::strcmp(argv[i], "--shards") == 0) {
        args.shards = static_cast<int>(parse_jobs(
            "--shards", option_value("--shards", argv, argc, &i)));
      } else if (std::strcmp(argv[i], "--shard-db-dir") == 0) {
        args.shard_db_dir =
            option_value("--shard-db-dir", argv, argc, &i);
      } else if (std::strcmp(argv[i], "--steal") == 0) {
        args.steal = true;
      } else if (std::strcmp(argv[i], "--no-steal") == 0) {
        args.steal = false;
      } else if (std::strcmp(argv[i], "--steal-grain") == 0) {
        args.steal_grain = parse_jobs(
            "--steal-grain", option_value("--steal-grain", argv, argc, &i));
      } else if (std::strcmp(argv[i], "--placement") == 0) {
        args.placement = parse_placement(
            "--placement", option_value("--placement", argv, argc, &i));
      } else if (std::strcmp(argv[i], "--cost-profile") == 0) {
        args.cost_profile =
            option_value("--cost-profile", argv, argc, &i);
      } else if (std::strcmp(argv[i], "--retries") == 0) {
        args.retry.max_attempts = static_cast<int>(parse_jobs(
            "--retries", option_value("--retries", argv, argc, &i)));
      } else if (std::strcmp(argv[i], "--resume") == 0) {
        args.resume = true;
      } else if (std::strcmp(argv[i], "--max-restarts") == 0) {
        args.max_restarts = parse_nonneg(
            "--max-restarts", option_value("--max-restarts", argv, argc, &i));
      } else if (std::strcmp(argv[i], "--stall-deadline") == 0) {
        args.stall_deadline = parse_nonneg_double(
            "--stall-deadline",
            option_value("--stall-deadline", argv, argc, &i));
      } else if (std::strcmp(argv[i], "--allow-partial") == 0) {
        args.allow_partial = true;
      } else if (std::strcmp(argv[i], "--keep-going") == 0) {
        args.keep_going = true;
      } else if (std::strcmp(argv[i], "--no-keep-going") == 0) {
        args.keep_going = false;
      } else {
        std::fprintf(stderr, "explore: unknown option '%s'\n", argv[i]);
        return usage();
      }
    }
    gargs.install();
    telemetry_begin(tel);
    const int rc = cmd_explore(argv[2], args);
    telemetry_finish(tel);
    return rc;
  }

  if (cmd == "bisect") {
    if (argc < 5) return usage();
    // The compilation is the positional run up to the first option; every
    // option is parsed strictly through option_value (a missing or
    // malformed value is an error, not a silently shortened compilation).
    int k = 0, digits = 0;
    TelemetryArgs tel;
    int end = argc;
    for (int i = 3; i < argc; ++i) {
      if (std::strncmp(argv[i], "--", 2) != 0) {
        if (end != argc) {
          std::fprintf(stderr,
                       "bisect: unexpected argument '%s' after options\n",
                       argv[i]);
          return usage();
        }
        continue;  // part of the compilation
      }
      if (end == argc) end = i;
      if (tel.parse(argv, argc, &i)) {
        // consumed
      } else if (std::strcmp(argv[i], "--k") == 0) {
        k = static_cast<int>(
            parse_long("--k", option_value("--k", argv, argc, &i)));
      } else if (std::strcmp(argv[i], "--digits") == 0) {
        digits = static_cast<int>(
            parse_long("--digits", option_value("--digits", argv, argc, &i)));
      } else {
        std::fprintf(stderr, "bisect: unknown option '%s'\n", argv[i]);
        return usage();
      }
    }
    toolchain::Compilation comp;
    if (!parse_compilation(argv, 3, end, &comp)) return usage();
    telemetry_begin(tel);
    const int rc = cmd_bisect(argv[2], comp, k, digits);
    telemetry_finish(tel);
    return rc;
  }

  if (cmd == "workflow") {
    if (argc < 3) return usage();
    WorkflowArgs args;
    args.jobs = core::default_jobs();
    TelemetryArgs tel;
    GenArgs gargs;
    for (int i = 3; i < argc; ++i) {
      if (tel.parse(argv, argc, &i)) {
        // consumed
      } else if (gargs.parse(argv, argc, &i)) {
        // consumed
      } else if (std::strcmp(argv[i], "--jobs") == 0) {
        args.jobs =
            parse_jobs("--jobs", option_value("--jobs", argv, argc, &i));
      } else if (std::strcmp(argv[i], "--max-bisects") == 0) {
        args.max_bisects = static_cast<std::size_t>(parse_nonneg(
            "--max-bisects", option_value("--max-bisects", argv, argc, &i)));
      } else if (std::strcmp(argv[i], "--k") == 0) {
        args.k = static_cast<int>(
            parse_long("--k", option_value("--k", argv, argc, &i)));
      } else if (std::strcmp(argv[i], "--digits") == 0) {
        args.digits = static_cast<int>(
            parse_long("--digits", option_value("--digits", argv, argc, &i)));
      } else if (std::strcmp(argv[i], "--shards") == 0) {
        args.shards = static_cast<int>(parse_jobs(
            "--shards", option_value("--shards", argv, argc, &i)));
      } else if (std::strcmp(argv[i], "--steal") == 0) {
        args.steal = true;
      } else if (std::strcmp(argv[i], "--no-steal") == 0) {
        args.steal = false;
      } else if (std::strcmp(argv[i], "--steal-grain") == 0) {
        args.steal_grain = parse_jobs(
            "--steal-grain", option_value("--steal-grain", argv, argc, &i));
      } else if (std::strcmp(argv[i], "--placement") == 0) {
        args.placement = parse_placement(
            "--placement", option_value("--placement", argv, argc, &i));
      } else if (std::strcmp(argv[i], "--cost-profile") == 0) {
        args.cost_profile =
            option_value("--cost-profile", argv, argc, &i);
      } else if (std::strcmp(argv[i], "--retries") == 0) {
        args.retry.max_attempts = static_cast<int>(parse_jobs(
            "--retries", option_value("--retries", argv, argc, &i)));
      } else if (std::strcmp(argv[i], "--max-restarts") == 0) {
        args.max_restarts = parse_nonneg(
            "--max-restarts", option_value("--max-restarts", argv, argc, &i));
      } else if (std::strcmp(argv[i], "--stall-deadline") == 0) {
        args.stall_deadline = parse_nonneg_double(
            "--stall-deadline",
            option_value("--stall-deadline", argv, argc, &i));
      } else if (std::strcmp(argv[i], "--allow-partial") == 0) {
        args.allow_partial = true;
      } else if (std::strcmp(argv[i], "--keep-going") == 0) {
        args.keep_going = true;
      } else if (std::strcmp(argv[i], "--no-keep-going") == 0) {
        args.keep_going = false;
      } else {
        std::fprintf(stderr, "workflow: unknown option '%s'\n", argv[i]);
        return usage();
      }
    }
    gargs.install();
    telemetry_begin(tel);
    const int rc = cmd_workflow(argv[2], args);
    telemetry_finish(tel);
    return rc;
  }

  if (cmd == "blame") {
    if (argc < 3) return usage();
    BlameArgs args;
    args.jobs = core::default_jobs();
    TelemetryArgs tel;
    GenArgs gargs;
    // The test name is optional when --db provides the cells (then every
    // test in the database is campaigned; a name filters to one).
    int first_opt = 2;
    if (std::strncmp(argv[2], "--", 2) != 0) {
      args.test = argv[2];
      first_opt = 3;
    }
    for (int i = first_opt; i < argc; ++i) {
      if (tel.parse(argv, argc, &i)) {
        // consumed
      } else if (gargs.parse(argv, argc, &i)) {
        // consumed
      } else if (std::strcmp(argv[i], "--db") == 0) {
        args.db_path = option_value("--db", argv, argc, &i);
      } else if (std::strcmp(argv[i], "--k") == 0) {
        args.k = static_cast<int>(
            parse_long("--k", option_value("--k", argv, argc, &i)));
      } else if (std::strcmp(argv[i], "--digits") == 0) {
        args.digits = static_cast<int>(
            parse_long("--digits", option_value("--digits", argv, argc, &i)));
      } else if (std::strcmp(argv[i], "--jobs") == 0) {
        args.jobs =
            parse_jobs("--jobs", option_value("--jobs", argv, argc, &i));
      } else if (std::strcmp(argv[i], "--shards") == 0) {
        args.shards = static_cast<int>(parse_jobs(
            "--shards", option_value("--shards", argv, argc, &i)));
      } else if (std::strcmp(argv[i], "--steal") == 0) {
        args.steal = true;
      } else if (std::strcmp(argv[i], "--no-steal") == 0) {
        args.steal = false;
      } else if (std::strcmp(argv[i], "--steal-grain") == 0) {
        args.steal_grain = parse_jobs(
            "--steal-grain", option_value("--steal-grain", argv, argc, &i));
      } else if (std::strcmp(argv[i], "--memo") == 0) {
        args.memo = true;
      } else if (std::strcmp(argv[i], "--no-memo") == 0) {
        args.memo = false;
      } else if (std::strcmp(argv[i], "--max-cells") == 0) {
        args.max_cells = static_cast<std::size_t>(parse_nonneg(
            "--max-cells", option_value("--max-cells", argv, argc, &i)));
      } else if (std::strcmp(argv[i], "--pairs") == 0) {
        args.pairs = static_cast<std::size_t>(parse_nonneg(
            "--pairs", option_value("--pairs", argv, argc, &i)));
      } else {
        std::fprintf(stderr, "blame: unknown option '%s'\n", argv[i]);
        return usage();
      }
    }
    if (args.test.empty() && args.db_path.empty()) {
      std::fprintf(stderr, "blame: a test name or --db file.tsv is required\n");
      return usage();
    }
    gargs.install();
    telemetry_begin(tel);
    const int rc = cmd_blame(args);
    telemetry_finish(tel);
    return rc;
  }

  if (cmd == "mix") {
    if (argc < 4) return usage();
    return cmd_mix(argv[2], parse_longdouble("tolerance", argv[3]));
  }

  if (cmd == "serve") {
    if (argc < 3) return usage();
    ServeArgs args;
    args.opts.jobs = core::default_jobs();
    TelemetryArgs tel;
    GenArgs gargs;
    for (int i = 3; i < argc; ++i) {
      if (tel.parse(argv, argc, &i)) {
        // consumed
      } else if (gargs.parse(argv, argc, &i)) {
        // consumed
      } else if (std::strcmp(argv[i], "--state-dir") == 0) {
        args.opts.state_dir = option_value("--state-dir", argv, argc, &i);
      } else if (std::strcmp(argv[i], "--stream-out") == 0) {
        args.opts.stream_dir = option_value("--stream-out", argv, argc, &i);
      } else if (std::strcmp(argv[i], "--cache-budget") == 0) {
        args.opts.cache_budget = parse_bytes(
            "--cache-budget", option_value("--cache-budget", argv, argc, &i));
      } else if (std::strcmp(argv[i], "--shards") == 0) {
        args.opts.shards = static_cast<int>(parse_jobs(
            "--shards", option_value("--shards", argv, argc, &i)));
      } else if (std::strcmp(argv[i], "--jobs") == 0) {
        args.opts.jobs =
            parse_jobs("--jobs", option_value("--jobs", argv, argc, &i));
      } else if (std::strcmp(argv[i], "--steal") == 0) {
        args.opts.steal = true;
      } else if (std::strcmp(argv[i], "--no-steal") == 0) {
        args.opts.steal = false;
      } else if (std::strcmp(argv[i], "--max-inflight") == 0) {
        args.opts.max_inflight = parse_jobs(
            "--max-inflight", option_value("--max-inflight", argv, argc, &i));
      } else if (std::strcmp(argv[i], "--checkpoint-batch") == 0) {
        args.opts.checkpoint_batch = parse_jobs(
            "--checkpoint-batch",
            option_value("--checkpoint-batch", argv, argc, &i));
      } else if (std::strcmp(argv[i], "--resume") == 0) {
        args.opts.resume = true;
      } else if (std::strcmp(argv[i], "--retries") == 0) {
        args.opts.retry.max_attempts = static_cast<int>(parse_jobs(
            "--retries", option_value("--retries", argv, argc, &i)));
      } else if (std::strcmp(argv[i], "--keep-going") == 0) {
        args.opts.keep_going = true;
      } else if (std::strcmp(argv[i], "--no-keep-going") == 0) {
        args.opts.keep_going = false;
      } else {
        std::fprintf(stderr, "serve: unknown option '%s'\n", argv[i]);
        return usage();
      }
    }
    if (args.opts.resume && args.opts.state_dir.empty()) {
      std::fprintf(stderr, "serve: --resume requires --state-dir\n");
      return 2;
    }
    gargs.install();
    telemetry_begin(tel);
    const int rc = cmd_serve(argv[2], args);
    telemetry_finish(tel);
    return rc;
  }

  std::fprintf(stderr,
               "flit: unknown command '%s' (commands: list, explore, "
               "bisect, workflow, mix, serve, gen, blame)\n",
               cmd.c_str());
  return usage();
}

}  // namespace

int main(int argc, char** argv) {
  // Any escaping exception (study abort, malformed database, bad option)
  // used to reach std::terminate; a tool in a driver script must fail
  // with a message and a status instead.
  try {
    return dispatch(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "flit: error: %s\n", e.what());
    return 1;
  }
}
